"""Ad-hoc campaign CLI: ``repro-campaign --network AlexNet --dtype FLOAT16``.

Runs one fault-injection campaign with full control over the fault model
(target, latch class, bit, burst, storage format, detector) and prints
the paper-style aggregations; ``--out`` additionally writes the JSON
summary for downstream analysis.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.campaign import TARGETS, CampaignAbortedError, CampaignSpec, run_campaign
from repro.core.checkpoint import CheckpointMismatchError
from repro.core.fault import DATAPATH_LATCHES
from repro.core.serialize import campaign_summary, save_json
from repro.core.tracing import EventRecorder
from repro.dtypes.registry import DTYPES
from repro.utils.tables import format_table
from repro.zoo.registry import NETWORKS

__all__ = ["main", "build_spec"]


def build_spec(args: argparse.Namespace) -> CampaignSpec:
    """Translate parsed CLI arguments into a campaign spec."""
    return CampaignSpec(
        network=args.network,
        dtype=args.dtype,
        target=args.target,
        n_trials=args.trials,
        scale=args.scale,
        n_inputs=args.inputs,
        seed=args.seed,
        latch=args.latch,
        bit=args.bit,
        burst=args.burst,
        layer_index=args.layer,
        with_detection=args.detect != "off",
        detector_kind=args.detect if args.detect != "off" else "sed",
        record_propagation=args.propagation,
        storage_dtype=args.storage_dtype,
        target_halfwidth=getattr(args, "target_halfwidth", None),
        stop_stratify=getattr(args, "stop_stratify", "overall"),
        stop_check_every=getattr(args, "stop_check_every", 64),
        stop_sdc_class=getattr(args, "stop_sdc_class", "sdc1"),
        trace_mode=getattr(args, "trace", "off"),
        trace_every=getattr(args, "trace_every", 16),
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Run one fault-injection campaign (Li et al., SC'17 fault model).",
    )
    parser.add_argument("--network", choices=sorted(NETWORKS), default="AlexNet")
    parser.add_argument("--dtype", choices=sorted(DTYPES), default="FLOAT16")
    parser.add_argument("--target", choices=TARGETS, default="datapath")
    parser.add_argument("--trials", type=int, default=300)
    parser.add_argument("--scale", choices=("reduced", "full"), default="reduced")
    parser.add_argument("--inputs", type=int, default=3, help="golden inputs rotated")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--latch", choices=DATAPATH_LATCHES, default=None)
    parser.add_argument("--bit", type=int, default=None)
    parser.add_argument("--burst", type=int, default=1, help="adjacent bits per flip")
    parser.add_argument("--layer", type=int, default=None, help="pin a MAC layer index")
    parser.add_argument("--detect", choices=("off", "sed", "dmr"), default="off")
    parser.add_argument("--propagation", action="store_true",
                        help="track survival to the final fmap (Table 5)")
    parser.add_argument("--storage-dtype", choices=sorted(DTYPES), default=None,
                        help="Proteus-style reduced-precision buffer storage")
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--batch", type=int, default=1,
                        help="trials propagated per batched forward pass "
                             "(1 = serial; results are bit-identical)")
    parser.add_argument("--shm", choices=("auto", "on", "off"), default="auto",
                        help="shared-memory golden state: parent computes golden "
                             "activations/weights once, workers attach read-only "
                             "(auto = on for multi-worker runs; bit-identical)")
    parser.add_argument("--out", default=None, help="write the JSON summary here")
    stopping = parser.add_argument_group("early stopping (docs/architecture.md)")
    stopping.add_argument("--target-halfwidth", type=float, default=None, metavar="W",
                          help="stop sampling a stratum once its Wilson 95%% "
                               "half-width drops to W (part of the campaign "
                               "identity; deterministic across jobs/batch/resume)")
    stopping.add_argument("--stop-stratify", choices=("overall", "site", "block", "bit"),
                          default="overall",
                          help="stratum key the stopping rule tracks")
    stopping.add_argument("--stop-check-every", type=int, default=64, metavar="N",
                          help="trial-index boundary between stop decisions")
    stopping.add_argument("--stop-sdc-class", choices=("sdc1", "sdc5", "sdc10", "sdc20"),
                          default="sdc1",
                          help="SDC class whose confidence interval drives stopping")
    resilience = parser.add_argument_group("resilience (docs/resilience.md)")
    resilience.add_argument("--checkpoint", default=None, metavar="PATH",
                            help="periodically snapshot completed trials to this JSONL file")
    resilience.add_argument("--resume", action="store_true",
                            help="skip trial indices already in --checkpoint")
    resilience.add_argument("--checkpoint-every", type=int, default=64, metavar="N",
                            help="completed trials between checkpoint flushes")
    resilience.add_argument("--trial-timeout", type=float, default=None, metavar="SEC",
                            help="per-trial time budget; hung chunks are killed and retried")
    resilience.add_argument("--max-retries", type=int, default=2, metavar="N",
                            help="retry budget per failing chunk before bisection/quarantine")
    resilience.add_argument("--max-error-frac", type=float, default=0.0, metavar="F",
                            help="abort once more than this fraction of trials is quarantined")
    resilience.add_argument("--events", action="store_true",
                            help="stream retry/rebuild/quarantine events to stderr")
    obs = parser.add_argument_group("observability (docs/observability.md)")
    obs.add_argument("--manifest", default=None, metavar="PATH",
                     help="write the run-manifest JSON here (defaults next to "
                          "--checkpoint when one is set)")
    obs.add_argument("--run-log", default=None, metavar="PATH",
                     help="append the structured JSONL run log here (same default)")
    obs.add_argument("--progress", type=float, default=0.0, metavar="SEC", nargs="?",
                     const=2.0,
                     help="print live progress (trials/s, ETA, RSS) every SEC "
                          "seconds (default 2.0 when given without a value)")
    obs.add_argument("--spans", action="store_true",
                     help="collect hierarchical timing spans (per-layer forward, "
                          "injection, checkpoint flushes) into the manifest")
    obs.add_argument("--trace", choices=("off", "sample", "all"), default="off",
                     help="record per-layer propagation traces for a subset of "
                          "trials selected by index (part of the campaign "
                          "identity; byte-identical across jobs/batch/resume)")
    obs.add_argument("--trace-every", type=int, default=16, metavar="N",
                     help="sampling stride for --trace sample (trace trials "
                          "whose index is divisible by N)")
    obs.add_argument("--trace-file", default=None, metavar="PATH",
                     help="trace JSONL path (defaults to "
                          "<checkpoint>.trace.jsonl when --checkpoint is set)")
    args = parser.parse_args(argv)

    try:
        spec = build_spec(args)
    except (ValueError, KeyError) as exc:
        print(f"invalid campaign: {exc}", file=sys.stderr)
        return 2

    recorder = EventRecorder(
        sink=(lambda event: print(event, file=sys.stderr)) if args.events else None
    )
    if args.progress:
        from repro.obs.progress import ProgressReporter

        recorder.add_sink(ProgressReporter(stream=sys.stderr, min_interval=args.progress))
    try:
        result = run_campaign(
            spec,
            jobs=args.jobs,
            batch=args.batch,
            shared_golden={"auto": None, "on": True, "off": False}[args.shm],
            checkpoint=args.checkpoint,
            resume=args.resume,
            checkpoint_every=args.checkpoint_every,
            trial_timeout=args.trial_timeout,
            max_retries=args.max_retries,
            max_error_frac=args.max_error_frac,
            events=recorder,
            spans=args.spans,
            manifest=args.manifest,
            run_log=args.run_log,
            progress_every=args.progress,
            trace_path=args.trace_file,
        )
    except CheckpointMismatchError as exc:
        print(f"checkpoint mismatch: {exc}", file=sys.stderr)
        return 2
    except CampaignAbortedError as exc:
        print(f"campaign aborted: {exc}", file=sys.stderr)
        if exc.checkpoint is not None:
            print(f"completed trials are preserved in {exc.checkpoint}; "
                  "re-run with --resume after fixing the cause", file=sys.stderr)
        return 3
    rows = []
    labels = {"sdc1": "SDC-1", "sdc5": "SDC-5", "sdc10": "SDC-10%", "sdc20": "SDC-20%"}
    for cls, rate in result.sdc_rates().items():
        rows.append([labels[cls], str(rate) if rate.n else "n/a"])
    title = f"{spec.network} / {spec.dtype} / {spec.target} ({spec.n_trials} injections)"
    print(format_table(["outcome", "probability (95% CI)"], rows, title=title))
    print(f"masked before output: {result.masked_fraction:.1%}")
    if spec.target_halfwidth is not None:
        saved = len(result.skips)
        stopped = (f", stopped at trial {result.stopped_at}"
                   if result.stopped_at is not None else "")
        print(f"early stopping: {saved} propagations skipped{stopped} "
              f"(target half-width {spec.target_halfwidth})")
    by_site = result.rate_by_site()
    if len(by_site) > 1:
        site_rows = [[s, str(r)] for s, r in by_site.items()]
        print()
        print(format_table(["site", "SDC-1"], site_rows))
    if spec.with_detection:
        q = result.detection_quality()
        print(f"detection ({spec.detector_kind}): precision {q.precision:.2%}, "
              f"recall {q.recall:.2%} over {q.total_sdc} SDCs")
    stats = result.stats
    if stats.resumed or stats.quarantined or stats.retries or stats.rebuilds:
        print(f"execution: {stats.resumed} resumed, {stats.quarantined} quarantined, "
              f"{stats.retries} retries, {stats.rebuilds} pool rebuilds, "
              f"{stats.timeouts} timeouts, {stats.bisections} bisections"
              + (", degraded to inline" if stats.degraded else ""))
    for err in result.errors:
        print(f"  quarantined trial {err.index}: {err.reason}"
              + (f" ({err.exc_type})" if err.exc_type else ""))
    if spec.trace_mode != "off":
        from repro.core.campaign import default_trace_path

        trace_target = args.trace_file or (
            default_trace_path(args.checkpoint) if args.checkpoint else None
        )
        where = f" ({trace_target})" if trace_target else " (in-memory only)"
        print(f"propagation traces: {len(result.traces)} trials{where}; "
              "inspect with 'repro-obs trace'")
    if args.out:
        path = save_json(campaign_summary(result), args.out)
        print(f"summary written to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
