"""Result serialization: campaigns and experiment outputs to JSON.

Fault-injection campaigns are expensive; persisting their summaries lets
downstream analysis (plotting, regression tracking, cross-machine
comparison) run without re-injecting.  ``to_jsonable`` sanitizes the
numpy/dataclass-laden experiment result dictionaries that
``repro.experiments.*.run`` produce.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np

from repro.core.campaign import CampaignResult
from repro.core.outcome import SDC_CLASSES

__all__ = ["to_jsonable", "from_jsonable", "campaign_summary", "save_json", "load_json"]

#: String spellings ``to_jsonable`` uses for the floats JSON cannot hold.
_NONFINITE = {"nan": float("nan"), "inf": float("inf"), "-inf": float("-inf")}


def to_jsonable(obj: object) -> object:
    """Recursively convert an experiment result into JSON-safe types.

    Handles numpy scalars/arrays, dataclasses, tuples (including
    tuple-keyed dicts, which become ``"a|b"`` string keys), and the
    non-finite floats JSON cannot express (mapped to strings).
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        if np.isnan(obj):
            return "nan"
        if np.isinf(obj):
            return "inf" if obj > 0 else "-inf"
        return obj
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return to_jsonable(float(obj))
    if isinstance(obj, np.ndarray):
        return [to_jsonable(v) for v in obj.tolist()]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return to_jsonable(dataclasses.asdict(obj))
    if isinstance(obj, dict):
        out = {}
        for k, v in obj.items():
            if isinstance(k, tuple):
                k = "|".join(str(p) for p in k)
            out[str(k)] = to_jsonable(v)
        return out
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(v) for v in obj]
    return str(obj)


def from_jsonable(obj: object) -> object:
    """Undo ``to_jsonable``'s lossy float encoding after a JSON round-trip.

    ``to_jsonable`` spells the non-finite floats as the strings ``"nan"``
    / ``"inf"`` / ``"-inf"`` (JSON has no literal for them); this inverse
    restores them recursively through dicts and lists.  Checkpoint/resume
    loading depends on it: a trial whose corrupted value overflowed to
    ``inf`` must reload as ``inf``, not as the string.  By the same token
    a *legitimate* string ``"nan"`` cannot survive the round-trip — do
    not use those spellings as data in serialized records.
    """
    if isinstance(obj, str):
        return _NONFINITE.get(obj, obj)
    if isinstance(obj, list):
        return [from_jsonable(v) for v in obj]
    if isinstance(obj, dict):
        return {k: from_jsonable(v) for k, v in obj.items()}
    return obj


def campaign_summary(result: CampaignResult) -> dict:
    """Compact JSON-ready summary of a campaign (no per-trial records)."""
    summary = {
        "spec": to_jsonable(result.spec),
        "n_trials": result.n_trials,
        "masked_fraction": result.masked_fraction,
        "sdc": {},
        "by_bit": {},
        "by_block": {},
        "by_site": {},
    }
    for cls in SDC_CLASSES:
        rate = result.sdc_rate(cls)
        summary["sdc"][cls] = {
            "p": rate.p,
            "ci95": rate.ci95_halfwidth,
            "successes": rate.successes,
            "n": rate.n,
        }
    summary["by_bit"] = {str(b): r.p for b, r in result.rate_by_bit().items()}
    summary["by_block"] = {str(b): r.p for b, r in result.rate_by_block().items()}
    summary["by_site"] = {s: r.p for s, r in result.rate_by_site().items()}
    by_reason: dict[str, int] = {}
    for err in result.errors:
        by_reason[err.reason] = by_reason.get(err.reason, 0) + 1
    summary["errors"] = {"n": len(result.errors), "by_reason": by_reason}
    if result.spec.trace_mode != "off":
        # Deterministic: the traced subset is a pure function of the
        # spec and trial indices, so it participates in parity diffs.
        summary["trace"] = {
            "mode": result.spec.trace_mode,
            "every": result.spec.trace_every,
            "rows": len(result.traces),
        }
    if result.spec.target_halfwidth is not None:
        # Deterministic (skip decisions are a pure function of the spec
        # and the trial prefix), so it participates in parity diffs.
        summary["early_stop"] = {
            "n_skips": len(result.skips),
            "stopped_at": result.stopped_at,
            "sampled": result.n_trials,
        }
    summary["execution"] = to_jsonable(result.stats)
    # Deterministic metric sections only: the summary must compare equal
    # across serial / parallel / resumed runs (the CI smoke test diffs
    # summaries after popping "execution"), so the wall-clock "timing"
    # section stays out — it lives in the run manifest instead.
    metrics = {k: v for k, v in (result.metrics or {}).items() if k != "timing"}
    if any(metrics.values()):
        summary["metrics"] = to_jsonable(metrics)
    quality = result.detection_quality()
    if quality.total_injected:
        summary["detection"] = {
            "precision": quality.precision,
            "recall": quality.recall,
            "total_sdc": quality.total_sdc,
        }
    return summary


def save_json(obj: object, path: str | Path) -> Path:
    """Serialize ``obj`` (sanitized) to ``path`` and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_jsonable(obj), indent=2, sort_keys=True))
    return path


def load_json(path: str | Path) -> object:
    """Load a previously saved JSON artifact."""
    return json.loads(Path(path).read_text())
