"""im2col / col2im transforms for vectorized convolution and pooling.

Convolution on the accelerator is a sea of MACs; in the simulator we lower
it to a single BLAS matmul per layer via im2col (the standard
vectorize-the-loop idiom from the HPC guides).  col2im is the adjoint,
needed by the training engine's convolution backward pass.

All fmaps are NCHW float64 arrays.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = [
    "conv_out_size",
    "im2col",
    "col2im",
    "col_indices",
    "patch_indices",
    "window_out_span",
]


def conv_out_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Output spatial extent of a conv/pool window sweep.

    Raises:
        ValueError: if the geometry yields a non-positive output size.
    """
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(f"invalid geometry: size={size} kernel={kernel} stride={stride} pad={pad}")
    return out


def window_out_span(
    r0: int, r1: int, kernel: int, stride: int, pad: int, out_size: int
) -> tuple[int, int]:
    """Output positions whose windows read any input position in ``[r0, r1)``.

    Returns a (possibly empty) half-open span clipped to ``[0, out_size)``;
    an empty span means no window covers the changed input rows (e.g. a
    strided sweep that skips them).
    """
    lo = -(-(r0 + pad - kernel + 1) // stride)  # ceil division
    hi = (r1 - 1 + pad) // stride
    lo = max(0, lo)
    hi = min(out_size - 1, hi)
    return (lo, hi + 1) if hi >= lo else (0, 0)


def _col_indices(
    c: int, h: int, w: int, kh: int, kw: int, stride: int, pad: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    """Index arrays mapping padded-input positions to column entries."""
    oh = conv_out_size(h, kh, stride, pad)
    ow = conv_out_size(w, kw, stride, pad)
    i0 = np.repeat(np.arange(kh), kw)
    i0 = np.tile(i0, c)
    i1 = stride * np.repeat(np.arange(oh), ow)
    j0 = np.tile(np.arange(kw), kh * c)
    j1 = stride * np.tile(np.arange(ow), oh)
    i = i0.reshape(-1, 1) + i1.reshape(1, -1)  # (c*kh*kw, oh*ow)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(c), kh * kw).reshape(-1, 1)
    return k, i, j, oh, ow


@lru_cache(maxsize=512)
def col_indices(
    c: int, h: int, w: int, kh: int, kw: int, stride: int, pad: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    """Cached, read-only :func:`_col_indices` result.

    The index arrays depend only on the window geometry, never on the
    data, and rebuilding them is a measurable slice of every partial
    forward pass in an injection campaign; one cache entry per distinct
    ``(c, h, w, kh, kw, stride, pad)`` covers all four paper networks.
    """
    k, i, j, oh, ow = _col_indices(c, h, w, kh, kw, stride, pad)
    for arr in (k, i, j):
        arr.setflags(write=False)
    return k, i, j, oh, ow


def im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int) -> np.ndarray:
    """Unfold sliding windows of ``x`` into columns.

    Args:
        x: Input of shape ``(n, c, h, w)``.
        kh, kw: Kernel extent.
        stride: Window stride (same in both dims).
        pad: Zero padding (same on all sides).

    Returns:
        Array of shape ``(c * kh * kw, n * oh * ow)`` where column
        ``(img, oy, ox)`` holds the receptive field of that output pixel.
    """
    n, c, h, w = x.shape
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad))) if pad else x
    k, i, j, oh, ow = col_indices(c, h, w, kh, kw, stride, pad)
    cols = xp[:, k, i, j]  # (n, c*kh*kw, oh*ow)
    return cols.transpose(1, 0, 2).reshape(c * kh * kw, n * oh * ow)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add columns back onto the input.

    Args:
        cols: ``(c * kh * kw, n * oh * ow)`` gradient columns.
        x_shape: Shape of the original input ``(n, c, h, w)``.

    Returns:
        Gradient w.r.t. the input, shape ``x_shape``.
    """
    n, c, h, w = x_shape
    k, i, j, oh, ow = col_indices(c, h, w, kh, kw, stride, pad)
    xp = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=np.float64)
    cols_n = cols.reshape(c * kh * kw, n, oh * ow).transpose(1, 0, 2)
    np.add.at(xp, (slice(None), k, i, j), cols_n)
    if pad:
        return xp[:, :, pad:-pad, pad:-pad]
    return xp


def patch_indices(
    x_shape: tuple[int, int, int, int],
    out_pos: tuple[int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Input coordinates feeding one output pixel, plus a validity mask.

    Used by the fault injector to reconstruct the MAC operand chain of a
    single convolution output without materializing the full im2col
    matrix.

    Args:
        x_shape: ``(n, c, h, w)`` input shape.
        out_pos: ``(oy, ox)`` output pixel.
        kh, kw, stride, pad: Window geometry.

    Returns:
        ``(cc, yy, xx, valid)`` flat arrays of length ``c * kh * kw``:
        channel/row/col of each tap in the *unpadded* input and a bool
        mask that is False where the tap falls in the zero padding.
    """
    _, c, h, w = x_shape
    oy, ox = out_pos
    cc, ky, kx = _patch_grid(c, kh, kw)
    yy = oy * stride - pad + ky
    xx = ox * stride - pad + kx
    valid = (yy >= 0) & (yy < h) & (xx >= 0) & (xx < w)
    return cc, yy, xx, valid


@lru_cache(maxsize=128)
def _patch_grid(c: int, kh: int, kw: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Cached output-pixel-relative tap grid for :func:`patch_indices`."""
    ky, kx = np.meshgrid(np.arange(kh), np.arange(kw), indexing="ij")
    ky = np.tile(ky.ravel(), c)
    kx = np.tile(kx.ravel(), c)
    cc = np.repeat(np.arange(c), kh * kw)
    for arr in (cc, ky, kx):
        arr.setflags(write=False)
    return cc, ky, kx
