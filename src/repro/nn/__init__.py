"""NumPy DNN inference and training engine (replaces the paper's Tiny-CNN)."""

from repro.nn.im2col import col2im, conv_out_size, im2col, patch_indices
from repro.nn.layers import (
    LRN,
    Conv2D,
    Dense,
    Flatten,
    GlobalAvgPool,
    Layer,
    MacChain,
    MacLayer,
    MaxPool2D,
    ReLU,
    Shape,
    Softmax,
)
from repro.nn.network import InferenceResult, Network
from repro.nn.profiling import BlockRange, RangeProfile, profile_ranges
from repro.nn.training import SGDTrainer, TrainReport, accuracy, softmax_cross_entropy

__all__ = [
    "col2im",
    "conv_out_size",
    "im2col",
    "patch_indices",
    "Layer",
    "MacLayer",
    "MacChain",
    "Shape",
    "Conv2D",
    "Dense",
    "ReLU",
    "Softmax",
    "Flatten",
    "LRN",
    "MaxPool2D",
    "GlobalAvgPool",
    "Network",
    "InferenceResult",
    "BlockRange",
    "RangeProfile",
    "profile_ranges",
    "SGDTrainer",
    "TrainReport",
    "accuracy",
    "softmax_cross_entropy",
]
