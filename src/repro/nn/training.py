"""Minimal SGD training engine.

Used to genuinely *train* ConvNet on the synthetic CIFAR-like task so its
weights are learned rather than sampled — reproducing the paper's setting
where small-output-dimension networks have meaningful (and volatile)
confidence rankings.  Only the layer kinds ConvNet uses need gradients
(conv, relu, pool, fc, flatten, softmax); LRN is inference-only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.network import Network

__all__ = ["SGDTrainer", "TrainReport", "softmax_cross_entropy", "accuracy"]


def softmax_cross_entropy(logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean softmax cross-entropy loss and its gradient w.r.t. logits.

    Args:
        logits: ``(n, classes)`` raw scores.
        labels: ``(n,)`` integer class ids.

    Returns:
        ``(loss, dlogits)``.
    """
    n = logits.shape[0]
    shifted = logits - logits.max(axis=1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - log_z
    loss = -float(log_probs[np.arange(n), labels].mean())
    dlogits = np.exp(log_probs)
    dlogits[np.arange(n), labels] -= 1.0
    return loss, dlogits / n


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy of a logits batch."""
    return float((logits.argmax(axis=1) == labels).mean())


@dataclass
class TrainReport:
    """Per-epoch training trace."""

    losses: list[float] = field(default_factory=list)
    train_acc: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


class SGDTrainer:
    """Mini-batch SGD with momentum over a :class:`Network`.

    The softmax layer (if last) is excluded from the trained stack: the
    cross-entropy loss fuses it for numerical stability.

    Args:
        network: Network to train in place.
        lr: Learning rate.
        momentum: Classical momentum coefficient.
        weight_decay: L2 penalty on weights (not biases).
    """

    def __init__(
        self,
        network: Network,
        lr: float = 0.01,
        momentum: float = 0.9,
        weight_decay: float = 1e-4,
    ):
        self.network = network
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._trainable = network.layers
        if self._trainable and self._trainable[-1].kind == "softmax":
            self._trainable = self._trainable[:-1]
        self._velocity: dict[tuple[int, str], np.ndarray] = {}

    def logits(self, x: np.ndarray) -> np.ndarray:
        """Float64 forward through the trainable stack (no softmax)."""
        out = x
        for layer in self._trainable:
            out, _ = layer.forward_train(out)
        return out

    def train_step(self, x: np.ndarray, labels: np.ndarray) -> tuple[float, float]:
        """One SGD step on a batch; returns ``(loss, batch_accuracy)``."""
        caches = []
        out = x
        for layer in self._trainable:
            out, cache = layer.forward_train(out)
            caches.append(cache)
        loss, grad = softmax_cross_entropy(out, labels)
        acc = accuracy(out, labels)
        for idx in range(len(self._trainable) - 1, -1, -1):
            layer = self._trainable[idx]
            grad, pgrads = layer.backward(caches[idx], grad)
            for pname, g in pgrads.items():
                param = layer.params()[pname]
                if pname == "weight" and self.weight_decay:
                    g = g + self.weight_decay * param
                key = (idx, pname)
                v = self._velocity.get(key)
                v = self.momentum * v - self.lr * g if v is not None else -self.lr * g
                self._velocity[key] = v
                param += v
        return loss, acc

    def fit(
        self,
        x: np.ndarray,
        labels: np.ndarray,
        epochs: int = 5,
        batch_size: int = 32,
        rng: np.random.Generator | None = None,
        lr_decay: float = 0.7,
    ) -> TrainReport:
        """Train for ``epochs`` passes over ``(x, labels)``.

        The learning rate is multiplied by ``lr_decay`` after each epoch
        (momentum SGD on small batches diverges otherwise).  Invalidates
        the network's quantized-weight caches afterwards.
        """
        rng = rng or np.random.default_rng(0)
        n = x.shape[0]
        report = TrainReport()
        for _ in range(epochs):
            order = rng.permutation(n)
            ep_loss, ep_acc, batches = 0.0, 0.0, 0
            for start in range(0, n, batch_size):
                sel = order[start : start + batch_size]
                loss, acc = self.train_step(x[sel], labels[sel])
                ep_loss += loss
                ep_acc += acc
                batches += 1
            report.losses.append(ep_loss / batches)
            report.train_acc.append(ep_acc / batches)
            self.lr *= lr_decay
        self.network.invalidate_weight_caches()
        return report
