"""Error-free activation profiling (Table 4) and the SED learning phase.

The paper profiles the value range of every ACT in every layer during
fault-free execution (Table 4) and derives symptom-detector bounds from
those ranges with a 10% cushion (section 6.2).  A *block* here is a
paper-level layer: one CONV/FC plus its trailing ReLU/POOL/LRN — ranges
are taken over the block's final output, i.e. the ACT values handed to
the next layer (which is exactly what sits in the global buffer at
detection time).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dtypes.base import DataType
from repro.nn.network import Network

__all__ = ["BlockRange", "RangeProfile", "profile_ranges"]


@dataclass(frozen=True)
class BlockRange:
    """Observed value range of one block's output ACTs."""

    block: int
    lo: float
    hi: float

    def with_cushion(self, cushion: float) -> "BlockRange":
        """Expand the range by ``cushion`` (0.10 = the paper's 10%)."""
        span = 1.0 + cushion
        lo = self.lo * span if self.lo < 0 else self.lo / span
        hi = self.hi * span if self.hi > 0 else self.hi / span
        return BlockRange(self.block, lo, hi)

    def contains(self, values: np.ndarray) -> np.ndarray:
        """Element-wise in-range test; NaN counts as out of range."""
        v = np.asarray(values, dtype=np.float64)
        with np.errstate(invalid="ignore"):
            ok = (v >= self.lo) & (v <= self.hi)
        return ok & ~np.isnan(v)


@dataclass
class RangeProfile:
    """Per-block activation ranges of one network (one Table 4 row)."""

    network: str
    ranges: dict[int, BlockRange]

    def bounds(self, block: int) -> BlockRange:
        """Range of a block; raises KeyError for unknown blocks."""
        return self.ranges[block]

    def as_rows(self) -> list[tuple[int, float, float]]:
        """Table-4-style ``(layer, min, max)`` rows in block order."""
        return [(b, r.lo, r.hi) for b, r in sorted(self.ranges.items())]

    def merge(self, other: "RangeProfile") -> "RangeProfile":
        """Combine with another profile of the same network (range union)."""
        if other.network != self.network:
            raise ValueError("cannot merge profiles of different networks")
        merged = dict(self.ranges)
        for b, r in other.ranges.items():
            if b in merged:
                merged[b] = BlockRange(b, min(merged[b].lo, r.lo), max(merged[b].hi, r.hi))
            else:
                merged[b] = r
        return RangeProfile(self.network, merged)


def _block_layer_map(network: Network, scope: str) -> dict[int, list[int]]:
    """Map block index -> layer indices whose outputs are profiled.

    ``scope="all"`` covers every layer output in the block — including
    the raw (pre-ReLU) MAC output, which is how Table 4 of the paper
    shows negative minima for ReLU-terminated layers.  ``scope="output"``
    covers only the block's final output (the values resident in the
    global buffer, which is where the SED detector checks).  A terminal
    softmax is always excluded: confidence scores live on the host, not
    in accelerator buffers.
    """
    blocks: dict[int, list[int]] = {}
    for i, layer in enumerate(network.layers):
        if layer.block is not None and layer.kind != "softmax":
            blocks.setdefault(layer.block, []).append(i)
    if scope == "output":
        return {b: [idx[-1]] for b, idx in blocks.items()}
    if scope == "all":
        return blocks
    raise ValueError(f"scope must be 'all' or 'output', got {scope!r}")


def profile_ranges(
    network: Network,
    inputs: np.ndarray,
    dtype: DataType | None = None,
    scope: str = "all",
) -> RangeProfile:
    """Profile fault-free per-block ACT ranges over ``inputs``.

    Args:
        network: Network to profile.
        inputs: Batch of inputs, shape ``(n, *input_shape)``.
        dtype: Numeric format for the profiling runs (None = float64).
        scope: ``"all"`` profiles every ACT tensor in the block (Table 4
            semantics); ``"output"`` profiles only block outputs (what
            the deployed SED detector observes).

    Returns:
        A :class:`RangeProfile` with one :class:`BlockRange` per block.
    """
    block_layers = _block_layer_map(network, scope)
    lo = {b: np.inf for b in block_layers}
    hi = {b: -np.inf for b in block_layers}
    for x in inputs:
        res = network.forward(x, dtype=dtype, record=True)
        for b, layer_idxs in block_layers.items():
            for li in layer_idxs:
                act = res.activations[li + 1]  # activations[i+1] = output of layer i
                lo[b] = min(lo[b], float(act.min()))
                hi[b] = max(hi[b], float(act.max()))
    ranges = {b: BlockRange(b, lo[b], hi[b]) for b in block_layers}
    return RangeProfile(network.name, ranges)
