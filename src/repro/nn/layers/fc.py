"""Fully-connected layer (the paper's FC)."""

from __future__ import annotations

import numpy as np

from repro.dtypes.base import DataType
from repro.nn.layers.base import MacChain, MacLayer, Shape

__all__ = ["Dense"]


class Dense(MacLayer):
    """Affine layer ``y = W x + b`` over flattened features.

    Args:
        name: Layer name (e.g. ``"fc6"``).
        in_features: Input feature count.
        out_features: Output feature count.
    """

    kind = "fc"

    def __init__(self, name: str, in_features: int, out_features: int):
        super().__init__(name)
        if min(in_features, out_features) < 1:
            raise ValueError(f"{name}: invalid dense geometry")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = np.zeros((out_features, in_features), dtype=np.float64)
        self.bias = np.zeros(out_features, dtype=np.float64)

    # -- geometry --------------------------------------------------------- #
    def out_shape(self, in_shape: Shape) -> Shape:
        flat = int(np.prod(in_shape))
        if flat != self.in_features:
            raise ValueError(f"{self.name}: expected {self.in_features} features, got {flat}")
        return (self.out_features,)

    def output_elements(self, in_shape: Shape) -> int:
        return self.out_features

    def chain_length(self, in_shape: Shape) -> int:
        return self.in_features

    def unravel_output(self, flat_index: int, in_shape: Shape) -> tuple[int, ...]:
        return (int(flat_index),)

    # -- parameters -------------------------------------------------------- #
    def params(self) -> dict[str, np.ndarray]:
        return {"weight": self.weight, "bias": self.bias}

    def weight_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return self.weight, self.bias

    # -- inference ----------------------------------------------------------- #
    def forward(self, x: np.ndarray, dtype: DataType | None = None) -> np.ndarray:
        w, b = self.quantized_weights(dtype)
        return self.forward_with_weights(x, dtype, w, b)

    def forward_with_weights(
        self,
        x: np.ndarray,
        dtype: DataType | None,
        weight: np.ndarray,
        bias: np.ndarray,
    ) -> np.ndarray:
        flat = x.reshape(x.shape[0], -1)
        with np.errstate(invalid="ignore", over="ignore"):
            if flat.shape[0] == 1:
                y = flat @ weight.T + bias
            else:
                # Per-sample GEMV slices: BLAS accumulation order depends
                # on the matrix extents, so a fused (n, in) @ (in, out)
                # product would give each sample different bits than the
                # (1, in) @ (in, out) call the serial path issues.  The
                # broadcast matmul runs one identically-shaped call per
                # sample, keeping batched propagation bit-exact.
                y = np.matmul(flat[:, None, :], weight.T)[:, 0, :] + bias
        return dtype.quantize(y) if dtype is not None else y

    # -- training ------------------------------------------------------------- #
    def forward_train(self, x: np.ndarray) -> tuple[np.ndarray, object]:
        flat = x.reshape(x.shape[0], -1)
        return flat @ self.weight.T + self.bias, (x.shape, flat)

    def backward(self, cache: object, dy: np.ndarray) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        x_shape, flat = cache
        dw = dy.T @ flat
        db = dy.sum(axis=0)
        dx = (dy @ self.weight).reshape(x_shape)
        return dx, {"weight": dw, "bias": db}

    # -- fault-injection support ------------------------------------------------ #
    def mac_operands(
        self, x: np.ndarray, out_index: tuple[int, ...], dtype: DataType | None
    ) -> MacChain:
        (j,) = out_index
        w, b = self.quantized_weights(dtype)
        return MacChain(weights=w[j].copy(), inputs=x.ravel().copy(), bias=float(b[j]))
