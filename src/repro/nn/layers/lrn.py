"""Local Response Normalization (the paper's NORM / LRN layer).

AlexNet/CaffeNet place an across-channel LRN after each of the first two
convolutional blocks.  The paper finds LRN is a powerful error masker: it
divides a faulty activation by a sum of squares over adjacent channels, so
a hugely deviated value is pulled back toward the fault-free cluster
around zero (sections 5.1.4 and 6.1, Figure 7).
"""

from __future__ import annotations

import numpy as np

from repro.dtypes.base import DataType
from repro.nn.layers.base import Layer, Shape

__all__ = ["LRN"]


class LRN(Layer):
    """Across-channel local response normalization (Krizhevsky et al.).

    ``y[c] = x[c] / (k + (alpha / n) * sum_{c' in window(c)} x[c']^2) ** beta``

    Args:
        name: Layer name.
        n: Window size across channels (AlexNet uses 5).
        alpha: Scale (AlexNet uses 1e-4).
        beta: Exponent (AlexNet uses 0.75).
        k: Additive constant (AlexNet uses 2.0).
    """

    kind = "lrn"

    def __init__(self, name: str, n: int = 5, alpha: float = 1e-4, beta: float = 0.75, k: float = 2.0):
        super().__init__(name)
        if n < 1 or alpha <= 0 or beta <= 0 or k < 0:
            raise ValueError(f"{name}: invalid LRN parameters")
        self.n = n
        self.alpha = alpha
        self.beta = beta
        self.k = k

    def out_shape(self, in_shape: Shape) -> Shape:
        return in_shape

    def out_row_span(self, in_shape: Shape, span: tuple[int, int]) -> tuple[int, int]:
        # Normalization mixes channels, never spatial positions.
        return span

    def _denominator(self, x: np.ndarray) -> np.ndarray:
        c = x.shape[1]
        with np.errstate(over="ignore", invalid="ignore"):
            sq = x * x
        half = self.n // 2
        with np.errstate(over="ignore", invalid="ignore"):
            # Fast path: sliding-window channel sum via a padded
            # cumulative sum (O(c)), computed for every pixel.
            csum = np.cumsum(
                np.pad(sq, ((0, 0), (1, 0), (0, 0), (0, 0))), axis=1, dtype=np.float64
            )
            lo = np.maximum(np.arange(c) - half, 0)
            hi = np.minimum(np.arange(c) + half, c - 1) + 1
            window = csum[:, hi] - csum[:, lo]
        # Robust path for corrupted pixels: a cumulative sum holding an
        # inf (or a value large enough to overflow it) would poison every
        # later window of *that pixel's* channel column with
        # inf - inf = NaN / cancellation; sum the n shifted slices
        # directly for exactly those pixels instead.  Path selection is
        # per pixel — each pixel's window is a function of its own channel
        # column only — so a clean pixel keeps its fast-path bits no
        # matter what other pixels (or batch mates) contain, which is what
        # lets batched and partial-row propagation reproduce the serial
        # engine exactly.
        bad = ~np.isfinite(sq)
        if c > self.n:
            # With c <= n every window spans all channels, so overflow of
            # the cumulative sum cannot cancel across window edges; the
            # finite-but-huge trigger only matters for wider stacks.
            bad |= sq >= 1e280
        if bad.any():
            nsel, ysel, xsel = np.nonzero(bad.any(axis=1))
            sq_sel = np.ascontiguousarray(sq[nsel, :, ysel, xsel])  # (m, c)
            win = sq_sel.copy()
            with np.errstate(over="ignore", invalid="ignore"):
                for off in range(1, half + 1):
                    win[:, off:] += sq_sel[:, :-off]
                    win[:, :-off] += sq_sel[:, off:]
            window[nsel, :, ysel, xsel] = win
        with np.errstate(over="ignore", invalid="ignore"):
            return np.power(self.k + (self.alpha / self.n) * window, self.beta)

    def forward(self, x: np.ndarray, dtype: DataType | None = None) -> np.ndarray:
        with np.errstate(over="ignore", invalid="ignore"):
            y = x / self._denominator(x)
        y = np.where(np.isnan(x), x, y)  # corrupted NaN patterns pass through
        return dtype.quantize(y) if dtype is not None else y

    # -- training ------------------------------------------------------------- #
    def forward_train(self, x: np.ndarray) -> tuple[np.ndarray, object]:
        denom = self._denominator(x)
        return x / denom, (x, denom)

    def backward(self, cache: object, dy: np.ndarray) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        """LRN gradient.

        With ``s[c] = k + (alpha/n) * sum_{c' in W(c)} x[c']^2`` and
        ``y[c] = x[c] * s[c]^-beta``:

        ``dx[j] = dy[j] * s[j]^-beta
                  - (2*alpha*beta/n) * x[j] * sum_{c: j in W(c)} dy[c] * x[c] * s[c]^(-beta-1)``
        """
        x, denom = cache
        s_pow = denom  # s^beta
        # dy * x * s^(-beta-1); note denom = s^beta so s^(-beta-1) =
        # denom^-1 * s^-1 with s = denom^(1/beta).
        s = np.power(denom, 1.0 / self.beta)
        inner = dy * x / (s_pow * s)
        c = x.shape[1]
        half = self.n // 2
        csum = np.cumsum(
            np.pad(inner, ((0, 0), (1, 0), (0, 0), (0, 0))), axis=1, dtype=np.float64
        )
        lo = np.maximum(np.arange(c) - half, 0)
        hi = np.minimum(np.arange(c) + half, c - 1) + 1
        window = csum[:, hi] - csum[:, lo]  # sum over {c : j in W(c)} by symmetry
        dx = dy / s_pow - (2.0 * self.alpha * self.beta / self.n) * x * window
        return dx, {}
