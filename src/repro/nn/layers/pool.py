"""Pooling layers: max pooling (the paper's POOL) and global average
pooling (NiN's classifier head).

POOL masks errors by discarding every non-maximum activation in each
window (paper section 5.1.4).
"""

from __future__ import annotations

import numpy as np

from repro.dtypes.base import DataType
from repro.nn.im2col import col2im, col_indices, conv_out_size, im2col, window_out_span
from repro.nn.layers.base import Layer, Shape

__all__ = ["MaxPool2D", "GlobalAvgPool"]


class MaxPool2D(Layer):
    """Max pooling over square windows.

    Args:
        name: Layer name.
        kernel: Window extent.
        stride: Window stride (defaults to ``kernel``).
        pad: Zero padding (rarely used; AlexNet-style pooling uses 0).
    """

    kind = "pool"

    def __init__(self, name: str, kernel: int, stride: int | None = None, pad: int = 0):
        super().__init__(name)
        if kernel < 1 or pad < 0:
            raise ValueError(f"{name}: invalid pool geometry")
        self.kernel = kernel
        self.stride = stride if stride is not None else kernel
        self.pad = pad

    def out_shape(self, in_shape: Shape) -> Shape:
        c, h, w = in_shape
        oh = conv_out_size(h, self.kernel, self.stride, self.pad)
        ow = conv_out_size(w, self.kernel, self.stride, self.pad)
        return (c, oh, ow)

    def _window_cols(self, x: np.ndarray) -> tuple[np.ndarray, tuple[int, ...]]:
        n, c, h, w = x.shape
        _, oh, ow = self.out_shape((c, h, w))
        flat = x.reshape(n * c, 1, h, w)
        cols = im2col(flat, self.kernel, self.kernel, self.stride, self.pad)
        return cols, (n, c, oh, ow)

    def forward(self, x: np.ndarray, dtype: DataType | None = None) -> np.ndarray:
        if self.pad:
            # Padding inserts zeros that must never win the max for
            # negative-valued windows; use -inf fill instead.
            x = np.pad(
                x,
                ((0, 0), (0, 0), (self.pad, self.pad), (self.pad, self.pad)),
                constant_values=-np.inf,
            )
            saved_pad, self.pad = self.pad, 0
            try:
                return self.forward(x, dtype)
            finally:
                self.pad = saved_pad
        cols, (n, c, oh, ow) = self._window_cols(x)
        y = cols.max(axis=0).reshape(n, c, oh, ow)
        return y  # selection only: values stay representable

    def forward_rows(
        self, x: np.ndarray, dtype: DataType | None, r0: int, r1: int
    ) -> tuple[np.ndarray, int, int]:
        """Compute output rows ``[r0, r1)`` only.

        Window maxima are per-column selections, so any subset of output
        positions reproduces the full :meth:`forward` bit-for-bit — no
        tile alignment needed.
        """
        n, c, h, w = x.shape
        _, oh, ow = self.out_shape((c, h, w))
        if self.pad:
            x = np.pad(
                x,
                ((0, 0), (0, 0), (self.pad, self.pad), (self.pad, self.pad)),
                constant_values=-np.inf,
            )
            h, w = h + 2 * self.pad, w + 2 * self.pad
        k, i, j, _, _ = col_indices(1, h, w, self.kernel, self.kernel, self.stride, 0)
        c0, c1 = r0 * ow, r1 * ow
        flat = x.reshape(n * c, h, w)
        cols = flat[:, i[:, c0:c1], j[:, c0:c1]]  # (n*c, kh*kw, ncols)
        y = cols.max(axis=1).reshape(n, c, r1 - r0, ow)
        return y, r0, r1

    def out_row_span(self, in_shape: Shape, span: tuple[int, int]) -> tuple[int, int]:
        _, oh, _ = self.out_shape(in_shape)
        return window_out_span(span[0], span[1], self.kernel, self.stride, self.pad, oh)

    def forward_train(self, x: np.ndarray) -> tuple[np.ndarray, object]:
        cols, (n, c, oh, ow) = self._window_cols(x)
        arg = cols.argmax(axis=0)
        y = cols[arg, np.arange(cols.shape[1])].reshape(n, c, oh, ow)
        return y, (x.shape, arg, cols.shape)

    def backward(self, cache: object, dy: np.ndarray) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        x_shape, arg, cols_shape = cache
        n, c, h, w = x_shape
        dcols = np.zeros(cols_shape, dtype=np.float64)
        dcols[arg, np.arange(cols_shape[1])] = dy.ravel()
        dx = col2im(dcols, (n * c, 1, h, w), self.kernel, self.kernel, self.stride, self.pad)
        return dx.reshape(x_shape), {}


class GlobalAvgPool(Layer):
    """Average each channel's fmap down to a single value (NiN head)."""

    kind = "gap"

    def out_shape(self, in_shape: Shape) -> Shape:
        c, _, _ = in_shape
        return (c,)

    def forward(self, x: np.ndarray, dtype: DataType | None = None) -> np.ndarray:
        y = x.mean(axis=(2, 3))
        return dtype.quantize(y) if dtype is not None else y

    def forward_train(self, x: np.ndarray) -> tuple[np.ndarray, object]:
        return x.mean(axis=(2, 3)), x.shape

    def backward(self, cache: object, dy: np.ndarray) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        n, c, h, w = cache
        dx = np.broadcast_to(dy[:, :, None, None] / (h * w), (n, c, h, w)).copy()
        return dx, {}
