"""Layer abstraction for the inference/training engine.

A network is a sequential stack of layers operating on NCHW float64
arrays.  Two execution modes exist:

- **Typed inference** (``forward``): the mode under fault injection.  The
  input is assumed already representable in the target
  :class:`~repro.dtypes.base.DataType`; the layer computes vectorized in
  float64 and quantizes its output, modelling operation-granularity
  rounding exactly as the paper's modified Tiny-CNN simulator does.
  Per-MAC-step rounding/saturation is replayed bit-exactly by the fault
  injector for the (single) corrupted accumulation chain.
- **Training** (``forward_train``/``backward``): pure float64 with
  gradient support, used to genuinely train ConvNet on the synthetic
  CIFAR-like task.

MAC layers (convolution, fully-connected) additionally expose the operand
chain of any single output element (:meth:`MacLayer.mac_operands`) so the
injector can corrupt one latch read of one MAC.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.dtypes.base import DataType

__all__ = ["Layer", "MacLayer", "MacChain", "Shape"]

#: Fmap shape without the batch dimension: ``(c, h, w)`` or ``(features,)``.
Shape = tuple[int, ...]


@dataclass
class MacChain:
    """The operand chain of one output element of a MAC layer.

    The accumulator starts at ``bias`` and adds ``weights[i] * inputs[i]``
    for each step ``i`` — the exact sequence of values that flows through
    the PE's operand, product and partial-sum latches (Figure 1b).

    Attributes:
        weights: Quantized weight operands, one per MAC step.
        inputs: Quantized input activations, one per MAC step.
        bias: Quantized accumulator initial value.
    """

    weights: np.ndarray
    inputs: np.ndarray
    bias: float

    @property
    def length(self) -> int:
        """Number of MAC steps in the chain."""
        return int(self.weights.shape[0])


class Layer(abc.ABC):
    """Base class for all layers."""

    #: Layer-kind tag: "conv", "relu", "pool", "lrn", "fc", "softmax", ...
    kind: str = "layer"

    def __init__(self, name: str):
        self.name = name
        #: Paper-level block index (CONV/FC position), assigned by Network.
        self.block: int | None = None

    # -- geometry --------------------------------------------------------- #
    @abc.abstractmethod
    def out_shape(self, in_shape: Shape) -> Shape:
        """Output fmap shape for a given input fmap shape (no batch dim)."""

    def mac_count(self, in_shape: Shape) -> int:
        """Number of multiply-accumulate operations per inference."""
        return 0

    def out_row_span(self, in_shape: Shape, span: tuple[int, int]) -> tuple[int, int] | None:
        """Output rows affected by a change to input rows ``[r0, r1)``.

        Used by the batched propagation engine to recompute only the
        region a corruption can reach.  ``None`` (the default) means the
        whole output may change (fully-connected layers, flatten, ...);
        spatially local layers return the covering output row span.
        """
        return None

    # -- typed inference --------------------------------------------------- #
    @abc.abstractmethod
    def forward(self, x: np.ndarray, dtype: DataType | None = None) -> np.ndarray:
        """Compute the layer output.

        Args:
            x: Batched input ``(n, *in_shape)``, already quantized when
                ``dtype`` is given.
            dtype: Target numeric format; ``None`` means exact float64.

        Returns:
            Batched output, quantized to ``dtype`` when given.
        """

    # -- training ----------------------------------------------------------- #
    def forward_train(self, x: np.ndarray) -> tuple[np.ndarray, object]:
        """Float64 forward returning ``(output, cache)`` for backward."""
        raise NotImplementedError(f"{self.kind} layer does not support training")

    def backward(self, cache: object, dy: np.ndarray) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        """Backward pass: returns ``(dx, param_gradients)``."""
        raise NotImplementedError(f"{self.kind} layer does not support training")

    # -- parameters ----------------------------------------------------------- #
    def params(self) -> dict[str, np.ndarray]:
        """Mutable mapping of parameter name to array (empty if none)."""
        return {}

    def param_count(self) -> int:
        """Total number of scalar parameters."""
        return sum(int(p.size) for p in self.params().values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


class MacLayer(Layer):
    """A layer whose outputs are dot products (convolution / FC).

    These are the only layers with datapath fault sites: every output
    element is produced by a MAC chain executed on a PE.
    """

    def __init__(self, name: str):
        super().__init__(name)
        self._qweights: dict[str, tuple[np.ndarray, np.ndarray]] = {}

    # -- weights ----------------------------------------------------------- #
    @abc.abstractmethod
    def weight_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(weight, bias)`` float64 arrays."""

    def quantized_weights(self, dtype: DataType | None) -> tuple[np.ndarray, np.ndarray]:
        """``(weight, bias)`` quantized to ``dtype`` (cached per format)."""
        w, b = self.weight_arrays()
        if dtype is None:
            return w, b
        cached = self._qweights.get(dtype.name)
        if cached is None:
            cached = (dtype.quantize(w), dtype.quantize(b))
            self._qweights[dtype.name] = cached
        return cached

    def invalidate_weight_cache(self) -> None:
        """Drop quantized-weight caches (call after mutating parameters)."""
        self._qweights.clear()

    def cached_quantized_weights(self) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        """Snapshot of the warmed per-format weight cache.

        Used by :mod:`repro.core.sharedgolden` to publish the quantized
        weights a campaign parent has already paid for into a shared
        segment; formats not in the cache are simply recomputed lazily by
        :meth:`quantized_weights`.
        """
        return dict(self._qweights)

    def install_quantized_weights(
        self, dtype_name: str, weight: np.ndarray, bias: np.ndarray
    ) -> bool:
        """Seed the weight cache for one format with externally-held arrays.

        The campaign workers hand in read-only views into a shared-memory
        segment so :meth:`quantized_weights` never re-quantizes what the
        parent already published.  Callers own array lifetime.

        A format already in the cache is left alone and ``False`` is
        returned: forked workers inherit the parent's warm private
        arrays, which must not be shadowed by segment views — the views
        die when the segment is detached, and purging them would throw
        away quantization work the process already paid for.
        """
        if dtype_name in self._qweights:
            return False
        self._qweights[dtype_name] = (weight, bias)
        return True

    def discard_quantized_weights(self, dtype_name: str) -> None:
        """Drop one format's cache entry (for purging installed views)."""
        self._qweights.pop(dtype_name, None)

    # -- fault-injection support --------------------------------------------- #
    @abc.abstractmethod
    def output_elements(self, in_shape: Shape) -> int:
        """Number of output elements (= number of MAC chains)."""

    @abc.abstractmethod
    def chain_length(self, in_shape: Shape) -> int:
        """MAC steps per output element."""

    @abc.abstractmethod
    def unravel_output(self, flat_index: int, in_shape: Shape) -> tuple[int, ...]:
        """Map a flat output-element index to an output coordinate."""

    @abc.abstractmethod
    def mac_operands(
        self, x: np.ndarray, out_index: tuple[int, ...], dtype: DataType | None
    ) -> MacChain:
        """Operand chain of output element ``out_index`` for input ``x``.

        ``x`` is unbatched (shape ``in_shape``).
        """

    @abc.abstractmethod
    def forward_with_weights(
        self,
        x: np.ndarray,
        dtype: DataType | None,
        weight: np.ndarray,
        bias: np.ndarray,
    ) -> np.ndarray:
        """Forward pass with substituted parameters (already quantized).

        Used by the injector to evaluate a layer whose resident weights
        were corrupted in the Filter SRAM, without mutating the network.
        """

    def mac_count(self, in_shape: Shape) -> int:
        return self.output_elements(in_shape) * self.chain_length(in_shape)
