"""Layer implementations for the inference/training engine."""

from repro.nn.layers.activation import Flatten, ReLU, Softmax
from repro.nn.layers.base import Layer, MacChain, MacLayer, Shape
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.fc import Dense
from repro.nn.layers.lrn import LRN
from repro.nn.layers.pool import GlobalAvgPool, MaxPool2D

__all__ = [
    "Layer",
    "MacLayer",
    "MacChain",
    "Shape",
    "Conv2D",
    "Dense",
    "ReLU",
    "Softmax",
    "Flatten",
    "LRN",
    "MaxPool2D",
    "GlobalAvgPool",
]
