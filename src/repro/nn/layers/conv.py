"""2-D convolution layer (the paper's CONV), lowered to im2col + GEMM."""

from __future__ import annotations

import numpy as np

from repro.dtypes.base import DataType
from repro.nn.im2col import col2im, conv_out_size, im2col, patch_indices
from repro.nn.layers.base import MacChain, MacLayer, Shape

__all__ = ["Conv2D"]


class Conv2D(MacLayer):
    """Multi-channel 2-D convolution with zero padding.

    Args:
        name: Layer name (e.g. ``"conv1"``).
        in_channels: Input fmap channels.
        out_channels: Number of filters / output fmaps.
        kernel: Square kernel extent.
        stride: Window stride.
        pad: Zero padding on each side.
    """

    kind = "conv"

    def __init__(
        self,
        name: str,
        in_channels: int,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        pad: int = 0,
    ):
        super().__init__(name)
        if min(in_channels, out_channels, kernel, stride) < 1 or pad < 0:
            raise ValueError(f"{name}: invalid conv geometry")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.pad = pad
        self.weight = np.zeros((out_channels, in_channels, kernel, kernel), dtype=np.float64)
        self.bias = np.zeros(out_channels, dtype=np.float64)

    # -- geometry --------------------------------------------------------- #
    def out_shape(self, in_shape: Shape) -> Shape:
        c, h, w = in_shape
        if c != self.in_channels:
            raise ValueError(f"{self.name}: expected {self.in_channels} channels, got {c}")
        oh = conv_out_size(h, self.kernel, self.stride, self.pad)
        ow = conv_out_size(w, self.kernel, self.stride, self.pad)
        return (self.out_channels, oh, ow)

    def output_elements(self, in_shape: Shape) -> int:
        c, oh, ow = self.out_shape(in_shape)
        return c * oh * ow

    def chain_length(self, in_shape: Shape) -> int:
        return self.in_channels * self.kernel * self.kernel

    def unravel_output(self, flat_index: int, in_shape: Shape) -> tuple[int, ...]:
        return tuple(int(v) for v in np.unravel_index(flat_index, self.out_shape(in_shape)))

    # -- parameters -------------------------------------------------------- #
    def params(self) -> dict[str, np.ndarray]:
        return {"weight": self.weight, "bias": self.bias}

    def weight_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return self.weight, self.bias

    # -- inference ----------------------------------------------------------- #
    def forward(self, x: np.ndarray, dtype: DataType | None = None) -> np.ndarray:
        w, b = self.quantized_weights(dtype)
        return self.forward_with_weights(x, dtype, w, b)

    def forward_with_weights(
        self,
        x: np.ndarray,
        dtype: DataType | None,
        weight: np.ndarray,
        bias: np.ndarray,
    ) -> np.ndarray:
        n = x.shape[0]
        _, oh, ow = self.out_shape(x.shape[1:])
        cols = im2col(x, self.kernel, self.kernel, self.stride, self.pad)
        wmat = weight.reshape(self.out_channels, -1)
        with np.errstate(invalid="ignore", over="ignore"):
            # inf/NaN operands are legal here: corrupted activations
            # propagate through the GEMM like they would through the MACs.
            y = wmat @ cols + bias[:, None]
        y = y.reshape(self.out_channels, n, oh * ow).transpose(1, 0, 2)
        y = y.reshape(n, self.out_channels, oh, ow)
        return dtype.quantize(y) if dtype is not None else y

    # -- training ------------------------------------------------------------- #
    def forward_train(self, x: np.ndarray) -> tuple[np.ndarray, object]:
        cols = im2col(x, self.kernel, self.kernel, self.stride, self.pad)
        n = x.shape[0]
        _, oh, ow = self.out_shape(x.shape[1:])
        wmat = self.weight.reshape(self.out_channels, -1)
        y = (wmat @ cols + self.bias[:, None]).reshape(self.out_channels, n, oh * ow)
        y = y.transpose(1, 0, 2).reshape(n, self.out_channels, oh, ow)
        return y, (x.shape, cols)

    def backward(self, cache: object, dy: np.ndarray) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        x_shape, cols = cache
        n, f, oh, ow = dy.shape
        dy_mat = dy.transpose(1, 0, 2, 3).reshape(f, n * oh * ow)
        dw = (dy_mat @ cols.T).reshape(self.weight.shape)
        db = dy_mat.sum(axis=1)
        wmat = self.weight.reshape(self.out_channels, -1)
        dcols = wmat.T @ dy_mat
        dx = col2im(dcols, x_shape, self.kernel, self.kernel, self.stride, self.pad)
        return dx, {"weight": dw, "bias": db}

    # -- fault-injection support ------------------------------------------------ #
    def mac_operands(
        self, x: np.ndarray, out_index: tuple[int, ...], dtype: DataType | None
    ) -> MacChain:
        f, oy, ox = out_index
        w, b = self.quantized_weights(dtype)
        cc, yy, xx, valid = patch_indices(
            (1, *x.shape), (oy, ox), self.kernel, self.kernel, self.stride, self.pad
        )
        taps = np.zeros(cc.shape[0], dtype=np.float64)
        taps[valid] = x[cc[valid], yy[valid], xx[valid]]
        return MacChain(weights=w[f].ravel().copy(), inputs=taps, bias=float(b[f]))
