"""2-D convolution layer (the paper's CONV), lowered to im2col + GEMM.

The inference GEMM is computed in a *fixed partition* of column tiles
(whole output rows, grouped to at least ``_TILE_COLS`` columns).  BLAS
picks different accumulation orders for different matrix extents, so a
fixed partition is what makes results invariant to how much of the
output is computed at once: a single sample, a stack of B corrupted
samples (``Network.forward_from_batch``), or a partial recomputation of
only the rows a fault can reach (``forward_rows``) all issue GEMM calls
of identical shapes over identical data and therefore produce
bit-identical values.
"""

from __future__ import annotations

import numpy as np

from repro.dtypes.base import DataType
from repro.nn.im2col import (
    col2im,
    col_indices,
    conv_out_size,
    im2col,
    patch_indices,
    window_out_span,
)
from repro.nn.layers.base import MacChain, MacLayer, Shape

__all__ = ["Conv2D"]

#: Minimum output columns per GEMM tile; tiles are whole output rows,
#: grouped from row 0, so any row-aligned recomputation hits the same
#: tile boundaries as the full sweep.
_TILE_COLS = 64


class Conv2D(MacLayer):
    """Multi-channel 2-D convolution with zero padding.

    Args:
        name: Layer name (e.g. ``"conv1"``).
        in_channels: Input fmap channels.
        out_channels: Number of filters / output fmaps.
        kernel: Square kernel extent.
        stride: Window stride.
        pad: Zero padding on each side.
    """

    kind = "conv"

    def __init__(
        self,
        name: str,
        in_channels: int,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        pad: int = 0,
    ):
        super().__init__(name)
        if min(in_channels, out_channels, kernel, stride) < 1 or pad < 0:
            raise ValueError(f"{name}: invalid conv geometry")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.pad = pad
        self.weight = np.zeros((out_channels, in_channels, kernel, kernel), dtype=np.float64)
        self.bias = np.zeros(out_channels, dtype=np.float64)

    # -- geometry --------------------------------------------------------- #
    def out_shape(self, in_shape: Shape) -> Shape:
        c, h, w = in_shape
        if c != self.in_channels:
            raise ValueError(f"{self.name}: expected {self.in_channels} channels, got {c}")
        oh = conv_out_size(h, self.kernel, self.stride, self.pad)
        ow = conv_out_size(w, self.kernel, self.stride, self.pad)
        return (self.out_channels, oh, ow)

    def output_elements(self, in_shape: Shape) -> int:
        c, oh, ow = self.out_shape(in_shape)
        return c * oh * ow

    def chain_length(self, in_shape: Shape) -> int:
        return self.in_channels * self.kernel * self.kernel

    def unravel_output(self, flat_index: int, in_shape: Shape) -> tuple[int, ...]:
        return tuple(int(v) for v in np.unravel_index(flat_index, self.out_shape(in_shape)))

    # -- parameters -------------------------------------------------------- #
    def params(self) -> dict[str, np.ndarray]:
        return {"weight": self.weight, "bias": self.bias}

    def weight_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return self.weight, self.bias

    # -- inference ----------------------------------------------------------- #
    def forward(self, x: np.ndarray, dtype: DataType | None = None) -> np.ndarray:
        w, b = self.quantized_weights(dtype)
        return self.forward_with_weights(x, dtype, w, b)

    def forward_with_weights(
        self,
        x: np.ndarray,
        dtype: DataType | None,
        weight: np.ndarray,
        bias: np.ndarray,
    ) -> np.ndarray:
        _, oh, _ = self.out_shape(x.shape[1:])
        y = self._gemm_rows(x, weight, bias, 0, oh)
        return dtype.quantize(y) if dtype is not None else y

    def _rows_per_tile(self, ow: int) -> int:
        return max(1, _TILE_COLS // ow)

    def _gemm_rows(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: np.ndarray,
        r0: int,
        r1: int,
    ) -> np.ndarray:
        """Float64 GEMM of output rows ``[r0, r1)``; ``r0`` tile-aligned.

        Per-sample GEMM calls over the fixed tile partition: batch
        composition and row-aligned partial recomputation cannot change
        a single output bit (see the module docstring).
        """
        n, c, h, w = x.shape
        xp = (
            np.pad(x, ((0, 0), (0, 0), (self.pad, self.pad), (self.pad, self.pad)))
            if self.pad
            else x
        )
        k, i, j, _, ow = col_indices(c, h, w, self.kernel, self.kernel, self.stride, self.pad)
        c0, c1 = r0 * ow, r1 * ow
        cols = xp[:, k, i[:, c0:c1], j[:, c0:c1]]  # (n, c*kh*kw, ncols)
        wmat = weight.reshape(self.out_channels, -1)
        y = np.empty((n, self.out_channels, c1 - c0), dtype=np.float64)
        step = self._rows_per_tile(ow) * ow
        with np.errstate(invalid="ignore", over="ignore"):
            # inf/NaN operands are legal here: corrupted activations
            # propagate through the GEMM like they would through the MACs.
            for s in range(0, c1 - c0, step):
                e = min(s + step, c1 - c0)
                if n == 1:
                    y[0, :, s:e] = wmat @ cols[0, :, s:e]
                else:
                    y[:, :, s:e] = np.matmul(wmat, cols[:, :, s:e])
            y += bias[:, None]
        return y.reshape(n, self.out_channels, r1 - r0, ow)

    def forward_rows(
        self, x: np.ndarray, dtype: DataType | None, r0: int, r1: int
    ) -> tuple[np.ndarray, int, int]:
        """Recompute output rows covering ``[r0, r1)`` bit-identically.

        The request is expanded to the canonical tile partition; returns
        ``(y, a0, a1)`` where ``y`` holds rows ``[a0, a1)`` and equals
        the same slice of :meth:`forward` on the same input.
        """
        _, oh, ow = self.out_shape(x.shape[1:])
        rpt = self._rows_per_tile(ow)
        a0 = (r0 // rpt) * rpt
        a1 = min(oh, -(-r1 // rpt) * rpt)
        w, b = self.quantized_weights(dtype)
        y = self._gemm_rows(x, w, b, a0, a1)
        return (dtype.quantize(y) if dtype is not None else y), a0, a1

    def forward_rows_batch(
        self,
        x: np.ndarray,
        dtype: DataType | None,
        spans: list[tuple[int, int]],
    ) -> list[tuple[np.ndarray, int, int]]:
        """Per-sample row-span recomputation, batched tile by tile.

        For each sample ``b`` of ``x`` this computes exactly what
        ``forward_rows(x[b:b+1], dtype, *spans[b])`` would — the same
        aligned span, the same bits — but the work is grouped by canonical
        tile: every tile GEMM runs at its fixed ``(K, tile_cols)`` shape
        over a stack holding only the samples whose span covers that
        tile.  FLOPs stay proportional to each sample's own span while
        the padding / index-gather / dispatch overhead is paid per tile
        instead of per sample.

        Args:
            x: Stacked inputs ``(B, c, h, w)``.
            spans: Per-sample requested output row spans (non-empty).

        Returns:
            One ``(y, a0, a1)`` per sample, as :meth:`forward_rows`.
        """
        n, c, h, w = x.shape
        _, oh, ow = self.out_shape((c, h, w))
        rpt = self._rows_per_tile(ow)
        weight, bias = self.quantized_weights(dtype)
        wmat = weight.reshape(self.out_channels, -1)
        xp = (
            np.pad(x, ((0, 0), (0, 0), (self.pad, self.pad), (self.pad, self.pad)))
            if self.pad
            else x
        )
        k, i, j, _, _ = col_indices(c, h, w, self.kernel, self.kernel, self.stride, self.pad)
        step = rpt * ow
        total = oh * ow
        aligned: list[tuple[int, int]] = []
        bufs: list[np.ndarray] = []
        need: dict[int, list[int]] = {}
        for b, (r0, r1) in enumerate(spans):
            a0 = (r0 // rpt) * rpt
            a1 = min(oh, -(-r1 // rpt) * rpt)
            aligned.append((a0, a1))
            bufs.append(np.empty((self.out_channels, (a1 - a0) * ow), dtype=np.float64))
            for t in range(a0 // rpt, -(-a1 // rpt)):
                need.setdefault(t, []).append(b)
        with np.errstate(invalid="ignore", over="ignore"):
            for t, sel in need.items():
                c0 = t * step
                c1 = min(c0 + step, total)
                sub = xp if len(sel) == n else xp[sel]
                cols = sub[:, k, i[:, c0:c1], j[:, c0:c1]]  # (Bt, K, tc)
                yt = np.matmul(wmat, cols)  # per-slice canonical GEMMs
                yt += bias[:, None]
                for pos, b in enumerate(sel):
                    o0 = c0 - aligned[b][0] * ow
                    bufs[b][:, o0 : o0 + (c1 - c0)] = yt[pos]
        out = []
        for b, (a0, a1) in enumerate(aligned):
            y = bufs[b].reshape(self.out_channels, a1 - a0, ow)
            out.append((dtype.quantize(y) if dtype is not None else y, a0, a1))
        return out

    def out_row_span(self, in_shape: Shape, span: tuple[int, int]) -> tuple[int, int]:
        _, oh, _ = self.out_shape(in_shape)
        return window_out_span(span[0], span[1], self.kernel, self.stride, self.pad, oh)

    # -- training ------------------------------------------------------------- #
    def forward_train(self, x: np.ndarray) -> tuple[np.ndarray, object]:
        cols = im2col(x, self.kernel, self.kernel, self.stride, self.pad)
        n = x.shape[0]
        _, oh, ow = self.out_shape(x.shape[1:])
        wmat = self.weight.reshape(self.out_channels, -1)
        y = (wmat @ cols + self.bias[:, None]).reshape(self.out_channels, n, oh * ow)
        y = y.transpose(1, 0, 2).reshape(n, self.out_channels, oh, ow)
        return y, (x.shape, cols)

    def backward(self, cache: object, dy: np.ndarray) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        x_shape, cols = cache
        n, f, oh, ow = dy.shape
        dy_mat = dy.transpose(1, 0, 2, 3).reshape(f, n * oh * ow)
        dw = (dy_mat @ cols.T).reshape(self.weight.shape)
        db = dy_mat.sum(axis=1)
        wmat = self.weight.reshape(self.out_channels, -1)
        dcols = wmat.T @ dy_mat
        dx = col2im(dcols, x_shape, self.kernel, self.kernel, self.stride, self.pad)
        return dx, {"weight": dw, "bias": db}

    # -- fault-injection support ------------------------------------------------ #
    def mac_operands(
        self, x: np.ndarray, out_index: tuple[int, ...], dtype: DataType | None
    ) -> MacChain:
        f, oy, ox = out_index
        w, b = self.quantized_weights(dtype)
        cc, yy, xx, valid = patch_indices(
            (1, *x.shape), (oy, ox), self.kernel, self.kernel, self.stride, self.pad
        )
        taps = np.zeros(cc.shape[0], dtype=np.float64)
        taps[valid] = x[cc[valid], yy[valid], xx[valid]]
        return MacChain(weights=w[f].ravel().copy(), inputs=taps, bias=float(b[f]))
