"""Activation and output layers: ReLU, Softmax, Flatten.

ReLU is the paper's universal activation function; softmax produces the
confidence scores used by the SDC-10%/-20% outcome classes (NiN omits it,
which is why those SDC classes are undefined for NiN).
"""

from __future__ import annotations

import numpy as np

from repro.dtypes.base import DataType
from repro.nn.layers.base import Layer, Shape

__all__ = ["ReLU", "Softmax", "Flatten"]


class ReLU(Layer):
    """Rectified linear unit, ``y = max(x, 0)``.

    ReLU is a strong error masker: any fault that drives an activation
    negative is zeroed (paper section 5.1.4).
    """

    kind = "relu"

    def out_shape(self, in_shape: Shape) -> Shape:
        return in_shape

    def out_row_span(self, in_shape: Shape, span: tuple[int, int]) -> tuple[int, int]:
        return span  # elementwise

    def forward(self, x: np.ndarray, dtype: DataType | None = None) -> np.ndarray:
        # NaNs (possible after FP bit flips) pass through unchanged: a
        # hardware max(x, 0) comparator forwards the corrupted pattern.
        y = np.where(np.isnan(x), x, np.maximum(x, 0.0))
        return y  # exact for every format: 0 and positives are preserved

    def forward_train(self, x: np.ndarray) -> tuple[np.ndarray, object]:
        y = np.maximum(x, 0.0)
        return y, (x > 0)

    def backward(self, cache: object, dy: np.ndarray) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        return dy * cache, {}


class Softmax(Layer):
    """Numerically-stable softmax over the feature axis.

    Always evaluated in float64: in deployed systems the final
    normalization runs on the host CPU, outside the accelerator's fault
    domain (paper section 4.3 excludes host faults).
    """

    kind = "softmax"

    def out_shape(self, in_shape: Shape) -> Shape:
        return in_shape

    def forward(self, x: np.ndarray, dtype: DataType | None = None) -> np.ndarray:
        x2 = x.reshape(x.shape[0], -1)
        with np.errstate(invalid="ignore", over="ignore"):
            # Plain max: a NaN logit poisons the whole distribution, just
            # as exp(NaN) would in a real softmax implementation.
            shifted = x2 - np.max(x2, axis=1, keepdims=True)
            e = np.exp(shifted)
            denom = e.sum(axis=1, keepdims=True)
            out = e / denom
        return out.reshape(x.shape)

    def forward_train(self, x: np.ndarray) -> tuple[np.ndarray, object]:
        y = self.forward(x)
        return y, y

    def backward(self, cache: object, dy: np.ndarray) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        y = cache
        dot = (dy * y).sum(axis=1, keepdims=True)
        return y * (dy - dot), {}


class Flatten(Layer):
    """Reshape a ``(c, h, w)`` fmap to a flat feature vector."""

    kind = "flatten"

    def out_shape(self, in_shape: Shape) -> Shape:
        return (int(np.prod(in_shape)),)

    def forward(self, x: np.ndarray, dtype: DataType | None = None) -> np.ndarray:
        return x.reshape(x.shape[0], -1)

    def forward_train(self, x: np.ndarray) -> tuple[np.ndarray, object]:
        return x.reshape(x.shape[0], -1), x.shape

    def backward(self, cache: object, dy: np.ndarray) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        return dy.reshape(cache), {}
