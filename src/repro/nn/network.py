"""Sequential network container with partial re-execution support.

The fault injector needs two things beyond plain inference:

- the activation entering every layer (to rebuild a single MAC operand
  chain), and
- ``forward_from``: resume execution at layer *i* with a corrupted
  activation, so one injection costs a partial forward pass rather than a
  full one.

Both are provided here.  All four paper networks are sequential stacks,
so no general DAG machinery is required.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dtypes.base import DataType
from repro.nn.layers.base import Layer, MacLayer, Shape
from repro.obs.spans import span

__all__ = ["Network", "InferenceResult", "BatchInferenceResult"]

#: Layer kinds the delta-propagation engine can recompute partially; any
#: other kind (flatten, fc, gap, softmax) mixes all spatial positions and
#: switches the batch to full vectorized execution.
_DELTA_KINDS = frozenset({"conv", "relu", "pool", "lrn"})


def _bits_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Bit-for-bit float64 array equality.

    Value comparison (``==``) is the wrong test for "is this patch the
    golden patch": ``-0.0 == 0.0`` yet the sign bit survives downstream
    sums, and ``NaN != NaN`` yet an identical NaN payload propagates
    identically through our deterministic arithmetic.  Comparing the raw
    bit patterns gives exactly the guarantee delta propagation needs:
    substituting one array for the other cannot change any later bit.
    """
    return bool((a.view(np.uint64) == b.view(np.uint64)).all())


@dataclass
class InferenceResult:
    """Outcome of one inference.

    Attributes:
        scores: Final output vector (confidence scores when the network
            ends in softmax, raw class scores otherwise).
        activations: ``activations[i]`` is the (unbatched, quantized)
            input of layer ``i``; ``activations[-1]`` is the final output.
            Empty if recording was disabled.
    """

    scores: np.ndarray
    activations: list[np.ndarray] = field(default_factory=list)

    def top1(self) -> int:
        """Index of the top-ranked output candidate."""
        return int(np.argmax(self.scores))

    def topk(self, k: int) -> np.ndarray:
        """Indices of the top-``k`` candidates, best first.

        Ranking matches :meth:`top1` (``np.argmax``) exactly: ties order
        by lowest index and NaN scores rank ahead of everything (a NaN
        output wins every ``argmax`` comparison), so ``topk(1)[0] ==
        top1()`` holds for every score vector.  The previous
        reversed-stable-argsort implementation broke ties toward the
        *highest* index, silently disagreeing with ``top1`` on tied
        scores.
        """
        s = np.asarray(self.scores, dtype=np.float64)
        nan = np.isnan(s)
        # lexsort: primary key last.  Non-NaN entries sort by descending
        # score; stability breaks ties by ascending index.
        order = np.lexsort((np.where(nan, 0.0, -s), ~nan))
        return order[:k]


@dataclass
class BatchInferenceResult:
    """Outcome of propagating a stack of B corrupted activations.

    Attributes:
        scores: ``(B, n_out)`` final output vectors, one row per trial.
        activations: Per-trial activation traces (same layout as
            :attr:`InferenceResult.activations`); empty when recording
            was disabled.
    """

    scores: np.ndarray
    activations: list[list[np.ndarray]] = field(default_factory=list)

    def result(self, b: int) -> InferenceResult:
        """Extract trial ``b`` as a plain :class:`InferenceResult`."""
        return InferenceResult(
            scores=self.scores[b],
            activations=self.activations[b] if self.activations else [],
        )


class Network:
    """A sequential DNN.

    Args:
        name: Network name (e.g. ``"AlexNet"``).
        layers: Layer stack, input to output.
        input_shape: Unbatched input fmap shape ``(c, h, w)``.
        dataset: Name of the associated dataset (Table 2 bookkeeping).
        has_confidence: True when the output is a confidence distribution
            (softmax present); NiN sets this False, which disables the
            SDC-10%/-20% outcome classes.
    """

    def __init__(
        self,
        name: str,
        layers: list[Layer],
        input_shape: Shape,
        dataset: str = "synthetic",
        has_confidence: bool = True,
    ):
        if not layers:
            raise ValueError("network needs at least one layer")
        self.name = name
        self.layers = list(layers)
        self.input_shape = tuple(input_shape)
        self.dataset = dataset
        self.has_confidence = has_confidence
        self._assign_blocks()
        self.shapes = self._infer_shapes()

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    def _assign_blocks(self) -> None:
        """Assign the paper-style block index (CONV/FC position) to layers.

        Each MAC layer starts a new block; the ReLU/POOL/LRN layers that
        follow belong to the same block.  Pre-MAC layers (none in our
        networks) would keep block None.
        """
        block = 0
        for layer in self.layers:
            if isinstance(layer, MacLayer):
                block += 1
            layer.block = block if block > 0 else None

    def _infer_shapes(self) -> list[Shape]:
        """Per-layer input shapes; ``shapes[i]`` feeds ``layers[i]``."""
        shapes = [self.input_shape]
        for layer in self.layers:
            shapes.append(layer.out_shape(shapes[-1]))
        return shapes

    @property
    def n_blocks(self) -> int:
        """Number of paper-level layers (CONV + FC blocks)."""
        return max((l.block or 0) for l in self.layers)

    @property
    def out_candidates(self) -> int:
        """Number of output candidates (classes)."""
        return int(np.prod(self.shapes[-1]))

    def mac_layer_indices(self) -> list[int]:
        """Indices of layers with datapath fault sites (conv/fc)."""
        return [i for i, l in enumerate(self.layers) if isinstance(l, MacLayer)]

    def mac_counts(self) -> dict[int, int]:
        """MACs per mac-layer index, for MAC-weighted fault-site sampling.

        Cached: the counts depend only on the (immutable) topology, and
        fault sampling asks for them once per trial.
        """
        cached = getattr(self, "_mac_counts", None)
        if cached is None:
            cached = self._mac_counts = {
                i: self.layers[i].mac_count(self.shapes[i])
                for i in self.mac_layer_indices()
            }
        return dict(cached)

    def total_macs(self) -> int:
        """Total MAC operations per inference."""
        return sum(self.mac_counts().values())

    def param_count(self) -> int:
        """Total scalar parameters."""
        return sum(l.param_count() for l in self.layers)

    def layer_named(self, name: str) -> Layer:
        """Look up a layer by name."""
        for l in self.layers:
            if l.name == name:
                return l
        raise KeyError(f"{self.name} has no layer named {name!r}")

    def blocks(self) -> dict[int, list[int]]:
        """Map block index -> layer indices in that block."""
        out: dict[int, list[int]] = {}
        for i, l in enumerate(self.layers):
            if l.block is not None:
                out.setdefault(l.block, []).append(i)
        return out

    def block_kinds(self) -> dict[int, str]:
        """Map block index -> 'CONV' or 'FC' (kind of its MAC layer)."""
        kinds: dict[int, str] = {}
        for i in self.mac_layer_indices():
            layer = self.layers[i]
            assert layer.block is not None
            kinds[layer.block] = "CONV" if layer.kind == "conv" else "FC"
        return kinds

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def prepare(self, dtype: DataType | None) -> None:
        """Warm the per-format quantized weight caches."""
        for i in self.mac_layer_indices():
            self.layers[i].quantized_weights(dtype)

    def block_output_indices(self) -> frozenset[int]:
        """Layer indices whose outputs are written to the global buffer
        (each block's final layer, excluding a terminal softmax)."""
        last: dict[int, int] = {}
        for i, layer in enumerate(self.layers):
            if layer.block is not None and layer.kind != "softmax":
                last[layer.block] = i
        return frozenset(last.values())

    def invalidate_weight_caches(self) -> None:
        """Drop all quantized-weight caches after mutating parameters."""
        for i in self.mac_layer_indices():
            self.layers[i].invalidate_weight_cache()

    def forward(
        self,
        x: np.ndarray,
        dtype: DataType | None = None,
        record: bool = True,
        storage_dtype: DataType | None = None,
    ) -> InferenceResult:
        """Run a full inference on one unbatched input.

        Args:
            x: Input fmap of shape ``input_shape``.
            dtype: Numeric format for weights/activations (None = float64).
            record: Keep every intermediate activation (needed for fault
                injection and profiling; disable for plain classification).
            storage_dtype: Optional *shorter* format applied to every
                block output — the Proteus-style reduced-precision buffer
                protocol of paper section 6.1, where fmaps are stored in
                memory in a narrow representation and unfolded into the
                (wider) datapath format for computation.
        """
        if tuple(x.shape) != self.input_shape:
            raise ValueError(f"expected input {self.input_shape}, got {tuple(x.shape)}")
        act = dtype.quantize(x) if dtype is not None else np.asarray(x, dtype=np.float64)
        if storage_dtype is not None:
            act = storage_dtype.quantize(act)
        store_at = self.block_output_indices() if storage_dtype is not None else frozenset()
        activations: list[np.ndarray] = [act] if record else []
        batched = act[None]
        for i, layer in enumerate(self.layers):
            # span() is a shared no-op unless timing is enabled, so this
            # per-layer hook stays out of the hot path's profile.
            with span(f"layer:{layer.name}"):
                batched = layer.forward(batched, dtype)
            if i in store_at:
                batched = storage_dtype.quantize(batched)
            if record:
                activations.append(batched[0])
        return InferenceResult(scores=batched[0].ravel(), activations=activations)

    def forward_from(
        self,
        layer_index: int,
        act: np.ndarray,
        dtype: DataType | None = None,
        record: bool = False,
        storage_dtype: DataType | None = None,
    ) -> InferenceResult:
        """Resume inference at ``layers[layer_index]`` with input ``act``.

        ``act`` must have shape ``shapes[layer_index]`` and be already
        quantized (a corrupted golden activation qualifies: flipping a bit
        keeps a value representable).

        ``layer_index`` may be any value in ``[0, len(layers)]``
        inclusive: the upper boundary runs zero layers and echoes ``act``
        back as the scores — the natural semantics for a fault landing in
        the final output buffer.  Anything outside that range raises
        ``IndexError``.
        """
        self._check_resume_index(layer_index)
        if tuple(act.shape) != self.shapes[layer_index]:
            raise ValueError(
                f"expected activation {self.shapes[layer_index]}, got {tuple(act.shape)}"
            )
        store_at = self.block_output_indices() if storage_dtype is not None else frozenset()
        activations: list[np.ndarray] = [act] if record else []
        batched = np.asarray(act, dtype=np.float64)[None]
        for i, layer in enumerate(self.layers[layer_index:], start=layer_index):
            with span(f"layer:{layer.name}"):
                batched = layer.forward(batched, dtype)
            if i in store_at:
                batched = storage_dtype.quantize(batched)
            if record:
                activations.append(batched[0])
        return InferenceResult(scores=batched[0].ravel(), activations=activations)

    def _check_resume_index(self, layer_index: int) -> None:
        if not 0 <= layer_index <= len(self.layers):
            raise IndexError(
                f"layer index {layer_index} outside [0, {len(self.layers)}] "
                f"(== len(layers) resumes past the last layer and echoes the input)"
            )

    def forward_from_batch(
        self,
        layer_index: int,
        acts: list[np.ndarray],
        dtype: DataType | None = None,
        record: bool = False,
        storage_dtype: DataType | None = None,
        *,
        goldens: list[InferenceResult] | None = None,
        dirty_rows: list[tuple[int, int] | None] | None = None,
    ) -> BatchInferenceResult:
        """Resume inference at ``layers[layer_index]`` for B trials at once.

        Bit-exactness contract: for every trial ``b``,
        ``forward_from_batch(i, acts)[b]`` is byte-identical to
        ``forward_from(i, acts[b])`` with the same arguments.  This holds
        because every layer evaluates each sample with the exact
        arithmetic (GEMM call shapes, reduction orders, per-pixel path
        choices) the serial engine uses — see the conv module docstring.

        ``layer_index`` accepts the same ``[0, len(layers)]`` range as
        :meth:`forward_from`; the upper boundary echoes each ``acts[b]``.

        Args:
            layer_index: Layer to resume at.
            acts: B corrupted activations, each of ``shapes[layer_index]``.
            dtype: Datapath format (as in :meth:`forward`).
            record: Keep per-trial activation traces.
            storage_dtype: Proteus-style narrow format applied at block
                outputs (as in :meth:`forward`).
            goldens: Optional per-trial golden traces (recorded with the
                same ``dtype``/``storage_dtype``).  Enables *delta
                propagation*: each layer recomputes only the output rows
                a trial's corruption can reach, patching them into a copy
                of the golden activation.
            dirty_rows: With ``goldens``: per-trial half-open input row
                spans ``(r0, r1)`` confining the corruption in ``acts[b]``
                (``None`` = anywhere, forces full recompute for that
                trial).
        """
        self._check_resume_index(layer_index)
        if not acts:
            raise ValueError("forward_from_batch needs at least one activation")
        for act in acts:
            if tuple(act.shape) != self.shapes[layer_index]:
                raise ValueError(
                    f"expected activation {self.shapes[layer_index]}, got {tuple(act.shape)}"
                )
        B = len(acts)
        store_at = self.block_output_indices() if storage_dtype is not None else frozenset()
        cur = [np.asarray(a, dtype=np.float64) for a in acts]
        traces: list[list[np.ndarray]] = [[c] for c in cur] if record else []
        start = layer_index
        if goldens is not None and dirty_rows is not None:
            if len(goldens) != B or len(dirty_rows) != B:
                raise ValueError("goldens/dirty_rows must have one entry per trial")
            for g in goldens:
                if len(g.activations) != len(self.layers) + 1:
                    raise ValueError("delta propagation needs fully recorded goldens")
            cur, start, end_spans = self._delta_layers(
                layer_index, cur, list(dirty_rows), dtype, storage_dtype, store_at, goldens, traces
            )
            # A trial whose span collapsed to empty is *dead*: its
            # activation is (a reference to) its golden, so every
            # remaining layer would recompute golden bits — take them
            # from the recorded golden instead of recomputing.
            dead = [
                b
                for b in range(B)
                if end_spans[b] is not None and end_spans[b][0] >= end_spans[b][1]
            ]
        else:
            dead = []
        alive = [b for b in range(B) if b not in dead]
        scores: list[np.ndarray | None] = [None] * B
        for b in dead:
            scores[b] = goldens[b].scores  # type: ignore[index]
            if record:
                traces[b].extend(goldens[b].activations[start + 1 :])  # type: ignore[index]
        if alive:
            batched = np.stack([cur[b] for b in alive])
            for i, layer in enumerate(self.layers[start:], start=start):
                with span(f"layer:{layer.name}"):
                    batched = layer.forward(batched, dtype)
                if i in store_at:
                    batched = storage_dtype.quantize(batched)
                if record:
                    for pos, b in enumerate(alive):
                        traces[b].append(batched[pos])
            flat = batched.reshape(len(alive), -1)
            for pos, b in enumerate(alive):
                scores[b] = flat[pos]
        return BatchInferenceResult(scores=np.stack(scores), activations=traces)

    def _delta_layers(
        self,
        layer_index: int,
        cur: list[np.ndarray],
        spans: list[tuple[int, int] | None],
        dtype: DataType | None,
        storage_dtype: DataType | None,
        store_at: frozenset[int],
        goldens: list[InferenceResult],
        traces: list[list[np.ndarray]],
    ) -> tuple[list[np.ndarray], int, list[tuple[int, int] | None]]:
        """Delta-propagate through the spatially local prefix.

        Walks layers starting at ``layer_index`` while every layer kind
        supports row-local recomputation and at least one trial still has
        a confined span; returns ``(activations, next_layer_index,
        spans)`` for the caller's full-batch loop to finish.  A trial
        whose span is ``None`` is fully recomputed each layer; a trial
        whose span is empty is passed through as (a reference to) its
        golden — the engine never writes into those, so goldens are
        never mutated.

        After each recomputation the patch is compared bit-for-bit
        against the golden rows: when a corruption is architecturally
        masked mid-flight (ReLU clips a negative delta, pooling drops a
        non-max delta, quantization rounds a tiny delta away — the
        paper's section 5 masking mechanisms), the trial's span
        collapses to empty and all remaining work for it disappears.
        The serial path would recompute exactly those golden bits, so
        skipping them is observationally identical.
        """
        B = len(cur)
        narrow = storage_dtype.quantize if storage_dtype is not None else None
        for i, layer in enumerate(self.layers[layer_index:], start=layer_index):
            if (
                layer.kind not in _DELTA_KINDS
                or all(s is None for s in spans)
                or all(s is not None and s[0] >= s[1] for s in spans)
            ):
                return cur, i, spans
            in_shape = self.shapes[i]
            golden_next = [g.activations[i + 1] for g in goldens]
            out: list[np.ndarray] = [None] * B  # type: ignore[list-item]
            new_spans: list[tuple[int, int] | None] = [None] * B
            full = []  # trials with unconfined corruption: recompute whole fmap
            for b in range(B):
                s = spans[b]
                if s is None:
                    full.append(b)
                elif s[0] >= s[1]:
                    new_spans[b] = (0, 0)
                    out[b] = golden_next[b]
                else:
                    new_spans[b] = layer.out_row_span(in_shape, s)
            with span(f"layer:{layer.name}"):
                if full:
                    # One stacked pass for the unconfined trials; per-sample
                    # GEMM slices keep each trial's bits identical to a solo
                    # forward (see the conv module docstring).
                    y = layer.forward(np.stack([cur[b] for b in full]), dtype)
                    if i in store_at:
                        y = narrow(y)
                    for pos, b in enumerate(full):
                        out[b] = y[pos]
                sel = [b for b in range(B) if out[b] is None]
                live = [b for b in sel if new_spans[b][0] < new_spans[b][1]]
                for b in sel:
                    if b not in live:
                        out[b] = golden_next[b]
                if live and layer.kind == "conv":
                    # Tile-batched: each trial recomputes only its own
                    # aligned span, with the per-tile GEMMs grouped across
                    # the trials that need them (see forward_rows_batch).
                    patches = layer.forward_rows_batch(
                        np.stack([cur[b] for b in live]),
                        dtype,
                        [new_spans[b] for b in live],
                    )
                    for b, (y, a0, a1) in zip(live, patches):
                        y = narrow(y) if i in store_at else y
                        if _bits_equal(y, golden_next[b][:, a0:a1]):
                            out[b] = golden_next[b]
                            new_spans[b] = (0, 0)
                        else:
                            dst = golden_next[b].copy()
                            dst[:, a0:a1] = y
                            out[b] = dst
                elif live:
                    # Recompute the union of the live trials' output spans
                    # in one stacked call (pool is exact on arbitrary row
                    # subsets; relu/lrn never mix spatial positions).  Rows
                    # inside the union but outside a trial's own span read
                    # only clean (golden-equal) input, so their recomputed
                    # bits equal the golden bits and patching the whole
                    # union into each trial is value-identical to patching
                    # that trial's own rows alone.
                    u0 = min(new_spans[b][0] for b in live)
                    u1 = max(new_spans[b][1] for b in live)
                    if layer.kind == "pool":
                        y, u0, u1 = layer.forward_rows(
                            np.stack([cur[b] for b in live]), dtype, u0, u1
                        )
                    else:  # relu / lrn: elementwise / per-pixel on row slices
                        y = layer.forward(
                            np.stack([cur[b][:, u0:u1] for b in live]), dtype
                        )
                    if i in store_at:
                        y = narrow(y)
                    for pos, b in enumerate(live):
                        if _bits_equal(y[pos], golden_next[b][:, u0:u1]):
                            out[b] = golden_next[b]
                            new_spans[b] = (0, 0)
                        else:
                            dst = golden_next[b].copy()
                            dst[:, u0:u1] = y[pos]
                            out[b] = dst
            cur = out
            spans = new_spans
            if traces:
                for b in range(B):
                    traces[b].append(cur[b])
        return cur, len(self.layers), spans

    # ------------------------------------------------------------------ #
    def describe(self) -> dict:
        """Table-2-style description row."""
        kinds = self.block_kinds()
        n_conv = sum(1 for k in kinds.values() if k == "CONV")
        n_fc = sum(1 for k in kinds.values() if k == "FC")
        has_lrn = any(l.kind == "lrn" for l in self.layers)
        topo = f"{n_conv} CONV" + (" (with LRN)" if has_lrn else "")
        if n_fc:
            topo += f" + {n_fc} FC"
        return {
            "network": self.name,
            "dataset": self.dataset,
            "output_candidates": self.out_candidates,
            "topology": topo,
            "params": self.param_count(),
            "macs": self.total_macs(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Network {self.name}: {len(self.layers)} layers, {self.n_blocks} blocks>"
