"""Sequential network container with partial re-execution support.

The fault injector needs two things beyond plain inference:

- the activation entering every layer (to rebuild a single MAC operand
  chain), and
- ``forward_from``: resume execution at layer *i* with a corrupted
  activation, so one injection costs a partial forward pass rather than a
  full one.

Both are provided here.  All four paper networks are sequential stacks,
so no general DAG machinery is required.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dtypes.base import DataType
from repro.nn.layers.base import Layer, MacLayer, Shape
from repro.obs.spans import span

__all__ = ["Network", "InferenceResult"]


@dataclass
class InferenceResult:
    """Outcome of one inference.

    Attributes:
        scores: Final output vector (confidence scores when the network
            ends in softmax, raw class scores otherwise).
        activations: ``activations[i]`` is the (unbatched, quantized)
            input of layer ``i``; ``activations[-1]`` is the final output.
            Empty if recording was disabled.
    """

    scores: np.ndarray
    activations: list[np.ndarray] = field(default_factory=list)

    def top1(self) -> int:
        """Index of the top-ranked output candidate."""
        return int(np.argmax(self.scores))

    def topk(self, k: int) -> np.ndarray:
        """Indices of the top-``k`` candidates, best first."""
        order = np.argsort(self.scores, kind="stable")[::-1]
        return order[:k]


class Network:
    """A sequential DNN.

    Args:
        name: Network name (e.g. ``"AlexNet"``).
        layers: Layer stack, input to output.
        input_shape: Unbatched input fmap shape ``(c, h, w)``.
        dataset: Name of the associated dataset (Table 2 bookkeeping).
        has_confidence: True when the output is a confidence distribution
            (softmax present); NiN sets this False, which disables the
            SDC-10%/-20% outcome classes.
    """

    def __init__(
        self,
        name: str,
        layers: list[Layer],
        input_shape: Shape,
        dataset: str = "synthetic",
        has_confidence: bool = True,
    ):
        if not layers:
            raise ValueError("network needs at least one layer")
        self.name = name
        self.layers = list(layers)
        self.input_shape = tuple(input_shape)
        self.dataset = dataset
        self.has_confidence = has_confidence
        self._assign_blocks()
        self.shapes = self._infer_shapes()

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    def _assign_blocks(self) -> None:
        """Assign the paper-style block index (CONV/FC position) to layers.

        Each MAC layer starts a new block; the ReLU/POOL/LRN layers that
        follow belong to the same block.  Pre-MAC layers (none in our
        networks) would keep block None.
        """
        block = 0
        for layer in self.layers:
            if isinstance(layer, MacLayer):
                block += 1
            layer.block = block if block > 0 else None

    def _infer_shapes(self) -> list[Shape]:
        """Per-layer input shapes; ``shapes[i]`` feeds ``layers[i]``."""
        shapes = [self.input_shape]
        for layer in self.layers:
            shapes.append(layer.out_shape(shapes[-1]))
        return shapes

    @property
    def n_blocks(self) -> int:
        """Number of paper-level layers (CONV + FC blocks)."""
        return max((l.block or 0) for l in self.layers)

    @property
    def out_candidates(self) -> int:
        """Number of output candidates (classes)."""
        return int(np.prod(self.shapes[-1]))

    def mac_layer_indices(self) -> list[int]:
        """Indices of layers with datapath fault sites (conv/fc)."""
        return [i for i, l in enumerate(self.layers) if isinstance(l, MacLayer)]

    def mac_counts(self) -> dict[int, int]:
        """MACs per mac-layer index, for MAC-weighted fault-site sampling."""
        return {
            i: self.layers[i].mac_count(self.shapes[i]) for i in self.mac_layer_indices()
        }

    def total_macs(self) -> int:
        """Total MAC operations per inference."""
        return sum(self.mac_counts().values())

    def param_count(self) -> int:
        """Total scalar parameters."""
        return sum(l.param_count() for l in self.layers)

    def layer_named(self, name: str) -> Layer:
        """Look up a layer by name."""
        for l in self.layers:
            if l.name == name:
                return l
        raise KeyError(f"{self.name} has no layer named {name!r}")

    def blocks(self) -> dict[int, list[int]]:
        """Map block index -> layer indices in that block."""
        out: dict[int, list[int]] = {}
        for i, l in enumerate(self.layers):
            if l.block is not None:
                out.setdefault(l.block, []).append(i)
        return out

    def block_kinds(self) -> dict[int, str]:
        """Map block index -> 'CONV' or 'FC' (kind of its MAC layer)."""
        kinds: dict[int, str] = {}
        for i in self.mac_layer_indices():
            layer = self.layers[i]
            assert layer.block is not None
            kinds[layer.block] = "CONV" if layer.kind == "conv" else "FC"
        return kinds

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def prepare(self, dtype: DataType | None) -> None:
        """Warm the per-format quantized weight caches."""
        for i in self.mac_layer_indices():
            self.layers[i].quantized_weights(dtype)

    def block_output_indices(self) -> frozenset[int]:
        """Layer indices whose outputs are written to the global buffer
        (each block's final layer, excluding a terminal softmax)."""
        last: dict[int, int] = {}
        for i, layer in enumerate(self.layers):
            if layer.block is not None and layer.kind != "softmax":
                last[layer.block] = i
        return frozenset(last.values())

    def invalidate_weight_caches(self) -> None:
        """Drop all quantized-weight caches after mutating parameters."""
        for i in self.mac_layer_indices():
            self.layers[i].invalidate_weight_cache()

    def forward(
        self,
        x: np.ndarray,
        dtype: DataType | None = None,
        record: bool = True,
        storage_dtype: DataType | None = None,
    ) -> InferenceResult:
        """Run a full inference on one unbatched input.

        Args:
            x: Input fmap of shape ``input_shape``.
            dtype: Numeric format for weights/activations (None = float64).
            record: Keep every intermediate activation (needed for fault
                injection and profiling; disable for plain classification).
            storage_dtype: Optional *shorter* format applied to every
                block output — the Proteus-style reduced-precision buffer
                protocol of paper section 6.1, where fmaps are stored in
                memory in a narrow representation and unfolded into the
                (wider) datapath format for computation.
        """
        if tuple(x.shape) != self.input_shape:
            raise ValueError(f"expected input {self.input_shape}, got {tuple(x.shape)}")
        act = dtype.quantize(x) if dtype is not None else np.asarray(x, dtype=np.float64)
        if storage_dtype is not None:
            act = storage_dtype.quantize(act)
        store_at = self.block_output_indices() if storage_dtype is not None else frozenset()
        activations: list[np.ndarray] = [act] if record else []
        batched = act[None]
        for i, layer in enumerate(self.layers):
            # span() is a shared no-op unless timing is enabled, so this
            # per-layer hook stays out of the hot path's profile.
            with span(f"layer:{layer.name}"):
                batched = layer.forward(batched, dtype)
            if i in store_at:
                batched = storage_dtype.quantize(batched)
            if record:
                activations.append(batched[0])
        return InferenceResult(scores=batched[0].ravel(), activations=activations)

    def forward_from(
        self,
        layer_index: int,
        act: np.ndarray,
        dtype: DataType | None = None,
        record: bool = False,
        storage_dtype: DataType | None = None,
    ) -> InferenceResult:
        """Resume inference at ``layers[layer_index]`` with input ``act``.

        ``act`` must have shape ``shapes[layer_index]`` and be already
        quantized (a corrupted golden activation qualifies: flipping a bit
        keeps a value representable).
        """
        if not 0 <= layer_index <= len(self.layers):
            raise IndexError(f"layer index {layer_index} out of range")
        if tuple(act.shape) != self.shapes[layer_index]:
            raise ValueError(
                f"expected activation {self.shapes[layer_index]}, got {tuple(act.shape)}"
            )
        store_at = self.block_output_indices() if storage_dtype is not None else frozenset()
        activations: list[np.ndarray] = [act] if record else []
        batched = np.asarray(act, dtype=np.float64)[None]
        for i, layer in enumerate(self.layers[layer_index:], start=layer_index):
            with span(f"layer:{layer.name}"):
                batched = layer.forward(batched, dtype)
            if i in store_at:
                batched = storage_dtype.quantize(batched)
            if record:
                activations.append(batched[0])
        return InferenceResult(scores=batched[0].ravel(), activations=activations)

    # ------------------------------------------------------------------ #
    def describe(self) -> dict:
        """Table-2-style description row."""
        kinds = self.block_kinds()
        n_conv = sum(1 for k in kinds.values() if k == "CONV")
        n_fc = sum(1 for k in kinds.values() if k == "FC")
        has_lrn = any(l.kind == "lrn" for l in self.layers)
        topo = f"{n_conv} CONV" + (" (with LRN)" if has_lrn else "")
        if n_fc:
            topo += f" + {n_fc} FC"
        return {
            "network": self.name,
            "dataset": self.dataset,
            "output_candidates": self.out_candidates,
            "topology": topo,
            "params": self.param_count(),
            "macs": self.total_macs(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Network {self.name}: {len(self.layers)} layers, {self.n_blocks} blocks>"
