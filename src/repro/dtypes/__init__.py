"""Bit-exact numeric formats evaluated by the paper (Table 3)."""

from repro.dtypes.base import BitField, DataType
from repro.dtypes.fixedpoint import (
    FXP_16B_RB10,
    FXP_32B_RB10,
    FXP_32B_RB26,
    FixedPointType,
)
from repro.dtypes.floating import DOUBLE, FLOAT, FLOAT16, FloatType
from repro.dtypes.registry import (
    DTYPES,
    FIXED_TYPES,
    FLOAT_TYPES,
    describe,
    describe_all,
    get_dtype,
)

__all__ = [
    "BitField",
    "DataType",
    "FloatType",
    "FixedPointType",
    "DOUBLE",
    "FLOAT",
    "FLOAT16",
    "FXP_16B_RB10",
    "FXP_32B_RB10",
    "FXP_32B_RB26",
    "DTYPES",
    "FLOAT_TYPES",
    "FIXED_TYPES",
    "get_dtype",
    "describe",
    "describe_all",
]
