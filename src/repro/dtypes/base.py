"""Abstract interface for bit-exact numeric data types.

The paper (Table 3) evaluates six datapath number formats: three IEEE-754
floating-point widths (DOUBLE, FLOAT, FLOAT16) and three two's-complement
saturating fixed-point layouts (32b_rb26, 32b_rb10, 16b_rb10).  Fault
injection needs *bit-level* access to values: encode a value to its raw bit
pattern, flip an arbitrary bit, decode back, and know which semantic field
(sign / exponent / mantissa / integer / fraction) each bit position belongs
to.  This module defines the common interface; concrete codecs live in
:mod:`repro.dtypes.floating` and :mod:`repro.dtypes.fixedpoint`.

All codecs operate on ``float64`` NumPy arrays as the carrier
representation: ``quantize`` maps arbitrary reals onto the representable
set of the format, and arithmetic helpers (``multiply``, ``accumulate``)
implement the format's exact rounding/saturation semantics so that a
multiply-accumulate chain can be replayed bit-exactly around an injected
fault.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

__all__ = ["BitField", "DataType"]


@dataclass(frozen=True)
class BitField:
    """A contiguous run of bits with a semantic role.

    Bit positions are numbered from 0 (least-significant) to ``width - 1``
    (most-significant), matching the x-axes of Figure 4 in the paper.

    Attributes:
        name: Semantic role: ``"sign"``, ``"exponent"``, ``"mantissa"``,
            ``"integer"`` or ``"fraction"``.
        lo: Lowest bit position in the field (inclusive).
        hi: Highest bit position in the field (inclusive).
    """

    name: str
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"BitField {self.name}: lo {self.lo} > hi {self.hi}")
        if self.lo < 0:
            raise ValueError(f"BitField {self.name}: negative lo {self.lo}")

    @property
    def width(self) -> int:
        """Number of bits in the field."""
        return self.hi - self.lo + 1

    def __contains__(self, bit: int) -> bool:
        return self.lo <= bit <= self.hi


class DataType(abc.ABC):
    """A bit-exact numeric format.

    Concrete subclasses must be stateless and hashable; a single shared
    instance per format is exposed through :mod:`repro.dtypes.registry`.
    """

    #: Short name as used in the paper, e.g. ``"FLOAT16"`` or ``"32b_rb10"``.
    name: str
    #: Total storage width in bits.
    width: int
    #: True for IEEE-754 formats, False for fixed point.
    is_float: bool
    #: Semantic bit fields, ordered from least-significant upward.
    fields: tuple[BitField, ...]

    # ------------------------------------------------------------------ #
    # Representation
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Round ``x`` onto the representable set of the format.

        Args:
            x: Array (or scalar) of float64 values.

        Returns:
            float64 array of the same shape whose every element is exactly
            representable in this format (fixed point saturates to the
            dynamic range; floating point overflows to +/-inf per IEEE).
        """

    @abc.abstractmethod
    def encode(self, x: np.ndarray) -> np.ndarray:
        """Return the raw bit pattern of ``quantize(x)`` as ``uint64``."""

    @abc.abstractmethod
    def decode(self, bits: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`encode`: bit patterns -> float64 values."""

    # ------------------------------------------------------------------ #
    # Fault injection
    # ------------------------------------------------------------------ #
    def flip_bit(self, x: np.ndarray, bit: int | np.ndarray) -> np.ndarray:
        """Flip ``bit`` in the representation of each element of ``x``.

        Args:
            x: Values (quantized implicitly first).
            bit: Bit position(s) in ``[0, width)``; scalar or broadcastable
                array of positions.

        Returns:
            float64 array of the corrupted values.
        """
        bit_arr = np.asarray(bit, dtype=np.uint64)
        if np.any(bit_arr >= self.width):
            raise ValueError(f"bit position out of range for {self.name} (width {self.width})")
        bits = self.encode(np.asarray(x, dtype=np.float64))
        flipped = bits ^ (np.uint64(1) << bit_arr)
        return self.decode(flipped)

    def flip_bits(self, x: np.ndarray, bit: int, burst: int = 1) -> np.ndarray:
        """Flip a burst of ``burst`` adjacent bits starting at ``bit``.

        Models multi-cell upsets (one particle strike corrupting
        neighbouring latch/SRAM cells); ``burst=1`` is the paper's
        single-event-upset model.  The burst is clipped at the word's
        most-significant bit.

        Args:
            x: Values (quantized implicitly first).
            bit: Lowest flipped bit position.
            burst: Number of adjacent bits to flip (>= 1).
        """
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        if not 0 <= bit < self.width:
            raise ValueError(f"bit position out of range for {self.name} (width {self.width})")
        span = min(burst, self.width - bit)
        mask = np.uint64(((1 << span) - 1) << bit)
        bits = self.encode(np.asarray(x, dtype=np.float64))
        return self.decode(bits ^ mask)

    def field_of(self, bit: int) -> str:
        """Return the semantic field name that ``bit`` belongs to."""
        for f in self.fields:
            if bit in f:
                return f.name
        raise ValueError(f"bit {bit} outside {self.name} width {self.width}")

    # ------------------------------------------------------------------ #
    # Exact arithmetic (MAC semantics)
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Format-exact product: ``quantize``-rounded ``a * b``."""

    @abc.abstractmethod
    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Format-exact sum (saturating for fixed point)."""

    @abc.abstractmethod
    def accumulate(self, products: np.ndarray) -> float:
        """Sequentially accumulate a 1-D chain of products, rounding (FP)
        or saturating (FxP) after every step, and return the final sum.

        This replays the accumulator register of the PE's MAC unit
        (Figure 1b in the paper) bit-exactly.
        """

    @abc.abstractmethod
    def partials(self, products: np.ndarray) -> np.ndarray:
        """Like :meth:`accumulate` but return the whole running-sum chain
        (the value held in the partial-sum latch after each MAC step)."""

    @abc.abstractmethod
    def accumulate_batch(self, products: np.ndarray, bias: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`accumulate` over many chains at once.

        Args:
            products: ``(n, length)`` matrix, one MAC chain per row.
            bias: ``(n,)`` accumulator initial values.

        Returns:
            ``(n,)`` final sums, each bit-identical to accumulating its
            row sequentially with per-step rounding/saturation.
        """

    # ------------------------------------------------------------------ #
    # Range metadata
    # ------------------------------------------------------------------ #
    @property
    @abc.abstractmethod
    def max_value(self) -> float:
        """Largest representable finite value."""

    @property
    @abc.abstractmethod
    def min_value(self) -> float:
        """Smallest (most negative) representable finite value."""

    @property
    def dynamic_range(self) -> float:
        """``max_value - min_value``; the paper's 'dynamic value range'."""
        return self.max_value - self.min_value

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<DataType {self.name} ({self.width}b)>"

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.name))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DataType) and other.name == self.name
