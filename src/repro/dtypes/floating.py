"""IEEE-754 floating-point codecs: DOUBLE, FLOAT and FLOAT16 (Table 3).

NumPy's native ``float16/32/64`` types *are* the IEEE-754 binary16/32/64
formats, so quantization is a cast and bit access is a same-width unsigned
view.  Per-step rounding of the MAC accumulator falls out of
``np.add.accumulate`` on the native dtype, which performs the additions in
the storage format.

Known limitation: values travel through a float64 carrier, which cannot
represent distinct float32/float16 NaN payloads — a bit flip that lands
in NaN space collapses to the canonical NaN on the next encode.  This is
immaterial for fault analysis (every NaN poisons downstream computation
identically) but means ``flip_bit`` is not a strict involution through a
NaN intermediate.
"""

from __future__ import annotations

import numpy as np

from repro.dtypes.base import BitField, DataType

__all__ = ["FloatType", "DOUBLE", "FLOAT", "FLOAT16"]

_UINT_FOR_WIDTH = {16: np.uint16, 32: np.uint32, 64: np.uint64}


class FloatType(DataType):
    """An IEEE-754 binary floating-point format backed by a NumPy dtype.

    Args:
        name: Paper name (``"DOUBLE"``, ``"FLOAT"``, ``"FLOAT16"``).
        np_dtype: The backing NumPy floating dtype.
        exponent_bits: Width of the exponent field.
        mantissa_bits: Width of the trailing significand field.
    """

    is_float = True

    def __init__(self, name: str, np_dtype: type, exponent_bits: int, mantissa_bits: int):
        self.name = name
        self.np_dtype = np.dtype(np_dtype)
        self.width = self.np_dtype.itemsize * 8
        if 1 + exponent_bits + mantissa_bits != self.width:
            raise ValueError(f"{name}: field widths do not sum to {self.width}")
        self.exponent_bits = exponent_bits
        self.mantissa_bits = mantissa_bits
        self.fields = (
            BitField("mantissa", 0, mantissa_bits - 1),
            BitField("exponent", mantissa_bits, mantissa_bits + exponent_bits - 1),
            BitField("sign", self.width - 1, self.width - 1),
        )
        self._uint = _UINT_FOR_WIDTH[self.width]
        finfo = np.finfo(self.np_dtype)
        self._max = float(finfo.max)
        self._min = float(finfo.min)

    # -- representation ------------------------------------------------- #
    def quantize(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if self.np_dtype == np.float64:
            return x.copy()
        with np.errstate(over="ignore", invalid="ignore"):
            return x.astype(self.np_dtype).astype(np.float64)

    def encode(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        with np.errstate(over="ignore", invalid="ignore"):
            native = x.astype(self.np_dtype)
        return native.view(self._uint).astype(np.uint64)

    def decode(self, bits: np.ndarray) -> np.ndarray:
        bits = np.asarray(bits, dtype=np.uint64)
        native = bits.astype(self._uint).view(self.np_dtype)
        with np.errstate(invalid="ignore"):
            return native.astype(np.float64)

    # -- arithmetic ------------------------------------------------------ #
    def multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=self.np_dtype)
        b = np.asarray(b, dtype=self.np_dtype)
        with np.errstate(over="ignore", invalid="ignore"):
            return (a * b).astype(np.float64)

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=self.np_dtype)
        b = np.asarray(b, dtype=self.np_dtype)
        with np.errstate(over="ignore", invalid="ignore"):
            return (a + b).astype(np.float64)

    def partials(self, products: np.ndarray) -> np.ndarray:
        p = np.asarray(products, dtype=self.np_dtype)
        with np.errstate(over="ignore", invalid="ignore"):
            chain = np.add.accumulate(p)
        return chain.astype(np.float64)

    def accumulate(self, products: np.ndarray) -> float:
        chain = self.partials(products)
        return float(chain[-1]) if chain.size else 0.0

    def accumulate_batch(self, products: np.ndarray, bias: np.ndarray) -> np.ndarray:
        products = np.asarray(products, dtype=self.np_dtype)
        bias = np.asarray(bias, dtype=self.np_dtype).reshape(-1, 1)
        if products.ndim != 2 or bias.shape[0] != products.shape[0]:
            raise ValueError("products must be (n, length) with one bias per row")
        full = np.concatenate([bias, products], axis=1)
        with np.errstate(over="ignore", invalid="ignore"):
            chain = np.add.accumulate(full, axis=1)
        return chain[:, -1].astype(np.float64)

    # -- range ------------------------------------------------------------ #
    @property
    def max_value(self) -> float:
        return self._max

    @property
    def min_value(self) -> float:
        return self._min


#: IEEE-754 binary64: 1 sign, 11 exponent, 52 mantissa bits.
DOUBLE = FloatType("DOUBLE", np.float64, 11, 52)
#: IEEE-754 binary32: 1 sign, 8 exponent, 23 mantissa bits.
FLOAT = FloatType("FLOAT", np.float32, 8, 23)
#: IEEE-754 binary16: 1 sign, 5 exponent, 10 mantissa bits.
FLOAT16 = FloatType("FLOAT16", np.float16, 5, 10)
