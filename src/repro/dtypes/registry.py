"""Registry of the paper's six data types (Table 3).

Provides name-based lookup used throughout the experiment harness and a
``describe_all`` helper that regenerates Table 3 of the paper.
"""

from __future__ import annotations

from repro.dtypes.base import DataType
from repro.dtypes.fixedpoint import FXP_16B_RB10, FXP_32B_RB10, FXP_32B_RB26
from repro.dtypes.floating import DOUBLE, FLOAT, FLOAT16

__all__ = [
    "DTYPES",
    "FLOAT_TYPES",
    "FIXED_TYPES",
    "get_dtype",
    "describe",
    "describe_all",
]

#: All evaluated formats, keyed by paper name, in Table 3 order.
DTYPES: dict[str, DataType] = {
    "DOUBLE": DOUBLE,
    "FLOAT": FLOAT,
    "FLOAT16": FLOAT16,
    "32b_rb26": FXP_32B_RB26,
    "32b_rb10": FXP_32B_RB10,
    "16b_rb10": FXP_16B_RB10,
}

#: Floating-point subset (paper's "FP").
FLOAT_TYPES: tuple[str, ...] = ("DOUBLE", "FLOAT", "FLOAT16")
#: Fixed-point subset (paper's "FxP").
FIXED_TYPES: tuple[str, ...] = ("32b_rb26", "32b_rb10", "16b_rb10")


def get_dtype(name: str) -> DataType:
    """Look up a data type by its paper name.

    Raises:
        KeyError: with the list of known names, if ``name`` is unknown.
    """
    try:
        return DTYPES[name]
    except KeyError:
        raise KeyError(f"unknown dtype {name!r}; known: {sorted(DTYPES)}") from None


def describe(dt: DataType) -> dict:
    """Return a Table-3-style description row for one data type."""
    return {
        "name": dt.name,
        "kind": "FP" if dt.is_float else "FxP",
        "width": dt.width,
        "fields": {f.name: f.width for f in dt.fields},
        "max_value": dt.max_value,
        "min_value": dt.min_value,
    }


def describe_all() -> list[dict]:
    """Regenerate Table 3: one description row per evaluated data type."""
    return [describe(dt) for dt in DTYPES.values()]
