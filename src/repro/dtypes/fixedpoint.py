"""Two's-complement saturating fixed-point codecs (Table 3).

The paper evaluates three layouts, written ``<width>b_rb<frac>``: a sign
bit, ``width - 1 - frac`` integer bits and ``frac`` fraction bits, e.g.
``16b_rb10`` = 1 sign + 5 integer + 10 fraction bits.  Arithmetic uses
round-to-nearest-even quantization and saturates any value beyond the
dynamic range to the nearest rail (paper section 4.5).
"""

from __future__ import annotations

import numpy as np

from repro.dtypes.base import BitField, DataType

__all__ = ["FixedPointType", "FXP_16B_RB10", "FXP_32B_RB10", "FXP_32B_RB26"]


class FixedPointType(DataType):
    """A two's-complement fixed-point format with saturation.

    Args:
        width: Total bit width (including sign).
        frac_bits: Number of fraction (radix) bits; the paper's ``rb``.
        name: Optional explicit name; defaults to ``"<w>b_rb<f>"``.
    """

    is_float = False

    def __init__(self, width: int, frac_bits: int, name: str | None = None):
        if not 2 <= width <= 63:
            raise ValueError(f"unsupported fixed-point width {width}")
        if not 0 <= frac_bits <= width - 1:
            raise ValueError(f"frac_bits {frac_bits} out of range for width {width}")
        self.width = width
        self.frac_bits = frac_bits
        self.int_bits = width - 1 - frac_bits
        self.name = name or f"{width}b_rb{frac_bits}"
        fields: list[BitField] = []
        if frac_bits:
            fields.append(BitField("fraction", 0, frac_bits - 1))
        if self.int_bits:
            fields.append(BitField("integer", frac_bits, width - 2))
        fields.append(BitField("sign", width - 1, width - 1))
        self.fields = tuple(fields)
        self._scale = float(2**frac_bits)
        self._imax = 2 ** (width - 1) - 1
        self._imin = -(2 ** (width - 1))
        self._mask = np.uint64((1 << width) - 1)

    # -- integer representation helpers ---------------------------------- #
    def to_int(self, x: np.ndarray) -> np.ndarray:
        """Quantize to the scaled-integer representation (int64)."""
        x = np.asarray(x, dtype=np.float64)
        scaled = np.rint(x * self._scale)
        # NaN (possible after a float-side computation) saturates to 0,
        # matching a hardware fixed-point converter's flush behaviour.
        scaled = np.nan_to_num(scaled, nan=0.0, posinf=self._imax, neginf=self._imin)
        return np.clip(scaled, self._imin, self._imax).astype(np.int64)

    def from_int(self, ints: np.ndarray) -> np.ndarray:
        """Map scaled integers back to real values."""
        return np.asarray(ints, dtype=np.float64) / self._scale

    # -- DataType interface ------------------------------------------------ #
    def quantize(self, x: np.ndarray) -> np.ndarray:
        return self.from_int(self.to_int(x))

    def encode(self, x: np.ndarray) -> np.ndarray:
        ints = self.to_int(x)
        return ints.astype(np.uint64) & self._mask

    def decode(self, bits: np.ndarray) -> np.ndarray:
        bits = np.asarray(bits, dtype=np.uint64) & self._mask
        ints = bits.astype(np.int64)
        sign_bit = np.int64(1) << np.int64(self.width - 1)
        ints = np.where(ints & sign_bit, ints - np.int64(1 << self.width), ints)
        return self.from_int(ints)

    def multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        # A w x w multiplier produces a 2w-bit product with 2*frac fraction
        # bits; the product latch rounds it back to the storage format.
        prod = np.asarray(a, dtype=np.float64) * np.asarray(b, dtype=np.float64)
        return self.quantize(prod)

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self.quantize(np.asarray(a, dtype=np.float64) + np.asarray(b, dtype=np.float64))

    def partials(self, products: np.ndarray) -> np.ndarray:
        ints = self.to_int(products)
        raw = np.cumsum(ints)
        if raw.size and (raw.max(initial=0) > self._imax or raw.min(initial=0) < self._imin):
            # Saturation engaged mid-chain: replay sequentially so each
            # partial sum clips exactly like the accumulator register.
            out = np.empty_like(raw)
            acc = 0
            for i, v in enumerate(ints):
                acc = min(max(acc + int(v), self._imin), self._imax)
                out[i] = acc
            raw = out
        return self.from_int(raw)

    def accumulate(self, products: np.ndarray) -> float:
        chain = self.partials(products)
        return float(chain[-1]) if chain.size else 0.0

    def accumulate_batch(self, products: np.ndarray, bias: np.ndarray) -> np.ndarray:
        products = np.asarray(products, dtype=np.float64)
        bias = np.asarray(bias, dtype=np.float64)
        if products.ndim != 2 or bias.shape[0] != products.shape[0]:
            raise ValueError("products must be (n, length) with one bias per row")
        ints = self.to_int(np.concatenate([bias[:, None], products], axis=1))
        raw = np.cumsum(ints, axis=1)
        # float64 here is a carrier for *exact* scaled integers (|acc| is
        # clipped far below 2^53); from_int re-asserts the dtype itself.
        out = raw[:, -1].astype(np.float64)
        # Rows whose running sum ever left the rails need the exact
        # saturating replay; everywhere else cumsum is already exact.
        bad = (raw.max(axis=1) > self._imax) | (raw.min(axis=1) < self._imin)
        for r in np.nonzero(bad)[0]:
            acc = 0
            for v in ints[r]:
                acc = min(max(acc + int(v), self._imin), self._imax)
            out[r] = acc
        return self.from_int(out)  # repro: noqa[RP611]

    # -- range -------------------------------------------------------------- #
    @property
    def max_value(self) -> float:
        return self._imax / self._scale

    @property
    def min_value(self) -> float:
        return self._imin / self._scale

    @property
    def resolution(self) -> float:
        """Smallest representable increment (one LSB)."""
        # Reporting-side float: the LSB value leaves the codec by design.
        return 1.0 / self._scale  # repro: noqa[RP203]


#: 16-bit: 1 sign, 5 integer, 10 fraction bits (Eyeriss's native format).
FXP_16B_RB10 = FixedPointType(16, 10)
#: 32-bit: 1 sign, 21 integer, 10 fraction bits (wide dynamic range).
FXP_32B_RB10 = FixedPointType(32, 10)
#: 32-bit: 1 sign, 5 integer, 26 fraction bits (narrow range, high precision).
FXP_32B_RB26 = FixedPointType(32, 26)
