"""Bench: regenerate Table 8 (SDC/FIT per Eyeriss buffer, 16b_rb10).

Shape claims checked: Filter SRAM / Global Buffer dominate the buffer
FIT; Img/PSum REGs stay small; buffer FIT exceeds the datapath FIT of
the same configuration (Table 6) by a large factor.
"""

from repro.experiments import table6_datapath_fit, table8_buffer_fit as exp

from bench_common import BENCH_CFG


def test_bench_table8_buffer_fit(run_once):
    result = run_once(exp.run, BENCH_CFG)
    print("\n" + exp.render(result))
    dp = table6_datapath_fit.run(BENCH_CFG)
    for network, comps in result["buffers"].items():
        big = comps["Filter SRAM"][2] + comps["Global Buffer"][2]
        small = comps["Img REG"][2] + comps["PSum REG"][2]
        assert big >= small, network
        datapath_fit = dp["fit"][(network, "16b_rb10")][0]
        if big > 0:
            assert big > datapath_fit, network
