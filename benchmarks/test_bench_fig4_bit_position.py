"""Bench: regenerate Figure 4 (SDC probability by bit position).

Shape claims checked: only high-order exponent (FP) / integer (FxP) bits
are vulnerable; mantissa and fraction bits have zero SDC probability.
"""

from repro.dtypes import get_dtype
from repro.experiments import fig4_bit_position as exp

from bench_common import BENCH_CFG


def test_bench_fig4_bit_position(run_once):
    result = run_once(exp.run, BENCH_CFG)
    print("\n" + exp.render(result))
    for panel, data in result["panels"].items():
        dtype = get_dtype(data["dtype"])
        for bit, (p, _ci, _n) in data["rates"].items():
            if dtype.field_of(bit) in ("mantissa", "fraction"):
                assert p == 0.0, (panel, bit)
    # 32b_rb10 integer bits are far more sensitive than 32b_rb26's.
    rb10 = sum(p for p, _, _ in result["panels"]["4d"]["rates"].values())
    rb26 = sum(p for p, _, _ in result["panels"]["4c"]["rates"].values())
    assert rb10 > rb26
