"""Bench: batched fault propagation vs the serial per-trial path.

The campaign hot path propagates each prepared corruption through the
network tail.  ``_SafeTrialTask.run_many`` groups a chunk's trials by
resume layer and pushes each group through
``Network.forward_from_batch``, which delta-propagates per-trial dirty
row spans and drops trials the instant their corruption is masked
mid-flight (see docs/architecture.md).  Results are bit-identical to
the serial path by contract; this bench measures what the grouping
buys and enforces the >= 2x floor at group size >= 16.

Protocol: one warm ``_SafeTrialTask``, best-of-3 wall time over the
same 250-trial ConvNet datapath campaign, serial (``task(i)`` per
trial) vs batched (``run_many`` over 64-trial chunks, the runner's
chunk size) at group sizes 16/32/64.
"""

from time import perf_counter

from conftest import _registry
from repro.core.campaign import CampaignSpec, _SafeTrialTask

from bench_common import TRIALS

SPEC = CampaignSpec(
    network="ConvNet", dtype="FLOAT16", target="datapath", n_trials=TRIALS, seed=0
)
GROUP_SIZES = (16, 32, 64)
CHUNK = 64  # run_campaign's default inter-process chunk


def _best_of(fn, rounds=5):
    """Best (min) wall time over ``rounds`` runs — the least-contended
    sample is the honest one on a noisy shared-CPU host."""
    best = None
    for _ in range(rounds):
        start = perf_counter()
        result = fn()
        elapsed = perf_counter() - start
        if best is None or elapsed < best[0]:
            best = (elapsed, result)
    return best


def _measure():
    task = _SafeTrialTask(SPEC)
    idx = list(range(TRIALS))

    def serial():
        task.group_size = 1
        return [task(i) for i in idx]

    def batched(group):
        task.group_size = group
        out = []
        for s in range(0, TRIALS, CHUNK):
            out.extend(task.run_many(idx[s : s + CHUNK]))
        return out

    reference = serial()  # warm caches (weights, goldens, index grids)
    batched(GROUP_SIZES[0])
    serial_s, _ = _best_of(serial)
    rows = []
    for group in GROUP_SIZES:
        batch_s, records = _best_of(lambda: batched(group))
        matches = all(
            a.outcome == b.outcome
            and (
                a.value_after == b.value_after
                or (a.value_after != a.value_after and b.value_after != b.value_after)
            )
            for a, b in zip(reference, records)
        )
        rows.append((group, TRIALS / batch_s, serial_s / batch_s, matches))
    return TRIALS / serial_s, rows


def test_bench_batched_propagation(run_once):
    serial_tps, rows = run_once(_measure)
    registry = _registry()
    registry.set_gauge("batched_propagation/serial_trials_per_s", serial_tps)
    print(f"\nserial   {serial_tps:8.1f} trials/s")
    for group, tps, speedup, matches in rows:
        registry.set_gauge(f"batched_propagation/group{group}_trials_per_s", tps)
        registry.set_gauge(f"batched_propagation/group{group}_speedup", speedup)
        print(f"group={group:<3d} {tps:8.1f} trials/s  ({speedup:.2f}x)")
        assert matches, f"group={group}: batched records diverge from serial"
    floor = {group: speedup for group, _, speedup, _ in rows}
    assert max(floor.values()) >= 2.0, (
        f"no group size >= 16 reaches the 2x floor: {floor}"
    )
