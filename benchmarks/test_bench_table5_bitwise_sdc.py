"""Bench: regenerate Table 5 (bit-wise propagation per conv layer).

Shape claims checked: most faults are masked before the final fmap
(paper: 84.36% average) and the final-layer propagation rate is the
lowest (deepest faults have the least room to spread).
"""

from repro.experiments import table5_bitwise_sdc as exp

from bench_common import BENCH_CFG


def test_bench_table5_bitwise_sdc(run_once):
    result = run_once(exp.run, BENCH_CFG)
    print("\n" + exp.render(result))
    assert result["avg_masked"] > 0.5
    rows = result["propagation"]
    assert rows[5][0] <= rows[1][0]  # deeper injection -> less spread
    assert result["avg_sdc1"] < rows[1][0]  # rankings flip less than bits
