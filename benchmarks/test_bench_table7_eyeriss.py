"""Bench: regenerate Table 7 (Eyeriss 65nm -> 16nm scaling)."""

from repro.experiments import table7_eyeriss_scaling as exp

from bench_common import BENCH_CFG


def test_bench_table7_eyeriss(run_once):
    result = run_once(exp.run, BENCH_CFG)
    print("\n" + exp.render(result))
    nm16 = result["rows"][1]
    assert nm16["n_pe"] == 1344
    assert nm16["global_buffer_kb"] == 784.0
