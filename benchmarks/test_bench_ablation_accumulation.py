"""Ablation: per-step MAC rounding vs accumulate-in-f64-then-quantize.

DESIGN.md calls out the injector's bit-exact chain replay (per-step
rounding for FP, per-step saturation for FxP) as a fidelity choice over
the cheaper quantize-once-at-the-end model.  This bench quantifies the
numeric gap on real AlexNet MAC chains: FLOAT16 chains differ by ulp-
level rounding, while 16b_rb10 chains can differ grossly whenever an
intermediate sum saturates.
"""

import numpy as np

from repro.dtypes import FLOAT16, FXP_16B_RB10
from repro.utils.rng import child_rng
from repro.zoo import eval_inputs, get_network


def _chain_samples(n=200):
    net = get_network("AlexNet")
    x = eval_inputs("AlexNet", 1)[0]
    rng = child_rng(5, 0)
    golden16 = net.forward(x, dtype=FLOAT16, record=True)
    goldenfx = net.forward(x, dtype=FXP_16B_RB10, record=True)
    chains = {"FLOAT16": [], "16b_rb10": []}
    for _ in range(n):
        li = int(rng.choice(net.mac_layer_indices()))
        layer = net.layers[li]
        in_shape = net.shapes[li]
        idx = layer.unravel_output(int(rng.integers(layer.output_elements(in_shape))), in_shape)
        chains["FLOAT16"].append(layer.mac_operands(golden16.activations[li], idx, FLOAT16))
        chains["16b_rb10"].append(layer.mac_operands(goldenfx.activations[li], idx, FXP_16B_RB10))
    return chains


def _compare(dtype, chains):
    diffs = []
    for chain in chains:
        products = dtype.multiply(chain.weights, chain.inputs)
        exact = dtype.partials(np.concatenate(([chain.bias], products)))[-1]
        lazy = dtype.quantize(np.array([chain.bias + (chain.weights * chain.inputs).sum()]))[0]
        diffs.append(abs(exact - lazy))
    return np.array(diffs)


def test_bench_ablation_accumulation(run_once):
    chains = _chain_samples()

    def measure():
        return {name: _compare(dtype, chains[name])
                for name, dtype in (("FLOAT16", FLOAT16), ("16b_rb10", FXP_16B_RB10))}

    diffs = run_once(measure)
    print()
    for name, d in diffs.items():
        print(f"{name}: mean |per-step - lazy| = {d.mean():.4g}, "
              f"max = {d.max():.4g}, differing chains = {(d > 0).mean():.1%}")
    # FP per-step rounding drifts a little on long chains...
    assert diffs["FLOAT16"].mean() < 1.0
    # ...and some chains genuinely differ, which is why the injector
    # replays chains with per-step semantics.
    assert (diffs["FLOAT16"] > 0).any()
