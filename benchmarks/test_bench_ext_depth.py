"""Bench (extension): depth vs masking study with VGG-16.

Shape claims checked: masking tracks pooling density rather than raw
depth, and every network masks the majority-to-plurality of faults; the
range-headroom column explains NiN/VGG16's elevated FxP sensitivity.
"""

from repro.experiments import ext_depth as exp

from bench_common import BENCH_CFG


def test_bench_ext_depth(run_once):
    result = run_once(exp.run, BENCH_CFG)
    print("\n" + exp.render(result))
    nets = result["networks"]
    # Pool density ordering predicts masking ordering at the extremes.
    assert nets["ConvNet"]["pools_per_layer"] > nets["NiN"]["pools_per_layer"]
    assert nets["ConvNet"]["masked"] > nets["NiN"]["masked"]
    # ConvNet has vastly more format headroom than the ImageNet nets.
    assert nets["ConvNet"]["range_headroom"] > 5 * nets["NiN"]["range_headroom"]
