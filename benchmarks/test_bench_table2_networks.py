"""Bench: regenerate Table 2 (networks used)."""

from repro.experiments import table2_networks as exp

from bench_common import BENCH_CFG


def test_bench_table2_networks(run_once):
    result = run_once(exp.run, BENCH_CFG)
    print("\n" + exp.render(result))
    by_name = {d["network"]: d for d in result["networks"]}
    assert by_name["ConvNet"]["output_candidates"] == 10
    assert by_name["NiN"]["output_candidates"] == 1000
    assert "LRN" in by_name["AlexNet"]["topology"]
