"""Bench: regenerate Figure 5 (value deviation, SDC vs benign).

Shape claim checked: the majority of SDC-causing corrupted values fall
outside the fault-free range; benign ones mostly stay inside (paper: 80%
vs 9.67%).
"""

from repro.experiments import fig5_value_deviation as exp

from bench_common import BENCH_CFG


def test_bench_fig5_value_deviation(run_once):
    result = run_once(exp.run, BENCH_CFG)
    print("\n" + exp.render(result))
    if result["sdc_pairs"]:
        assert result["sdc_out_of_range"] > result["benign_out_of_range"]
        assert result["sdc_out_of_range"] > 0.5
    assert result["benign_out_of_range"] < 0.5
