"""Bench: regenerate Table 1 (reuse taxonomy + row-stationary counts)."""

from repro.experiments import table1_reuse as exp

from bench_common import BENCH_CFG


def test_bench_table1_reuse(run_once):
    result = run_once(exp.run, BENCH_CFG)
    print("\n" + exp.render(result))
    eyeriss = next(r for r in result["taxonomy"] if r["accelerator"] == "Eyeriss")
    assert eyeriss["weight_reuse"] and eyeriss["image_reuse"] and eyeriss["output_reuse"]
    assert all(s["psum_uses"] == 1 for s in result["alexnet_reuse"])
