"""Ablation: SED range-cushion sweep (the paper fixes 10%).

Sweeps the detector cushion and reports precision/recall: zero cushion
risks false alarms on unseen-but-clean inputs; large cushions trade
recall for precision.
"""

from repro.core.campaign import CampaignSpec, run_campaign

from bench_common import TRIALS


def test_bench_ablation_sed_cushion(run_once):
    cushions = (0.0, 0.05, 0.10, 0.25)

    def sweep():
        out = {}
        for cushion in cushions:
            spec = CampaignSpec(
                network="AlexNet", dtype="32b_rb10", n_trials=TRIALS, seed=91,
                with_detection=True, sed_cushion=cushion,
            )
            out[cushion] = run_campaign(spec).detection_quality("sdc1")
        return out

    results = run_once(sweep)
    print()
    for cushion, q in results.items():
        print(f"cushion {cushion:4.0%}: precision {q.precision:.2%}  "
              f"recall {q.recall:.2%}  (SDCs: {q.total_sdc})")
    # Widening the cushion can only reduce detections: recall is
    # non-increasing in the cushion.
    recalls = [results[c].recall for c in cushions]
    assert all(a >= b - 1e-9 for a, b in zip(recalls, recalls[1:]))
