"""Ablation: multi-cell upsets vs the paper's single-event-upset model.

The paper injects single bit flips (section 4.3); modern dense latches
also see multi-cell upsets.  This bench sweeps the burst width on the
most SDC-prone configuration: wider bursts cover more integer bits per
strike, so the SDC probability grows with burst width — quantifying how
conservative the single-bit model is.
"""

from repro.core.campaign import CampaignSpec, run_campaign

from bench_common import TRIALS


def test_bench_ablation_multibit(run_once):
    bursts = (1, 2, 4)

    def sweep():
        return {
            b: run_campaign(
                CampaignSpec(network="AlexNet", dtype="32b_rb10",
                             n_trials=TRIALS, seed=92, burst=b)
            ).sdc_rate()
            for b in bursts
        }

    rates = run_once(sweep)
    print()
    for b, r in rates.items():
        print(f"burst {b}: SDC-1 {r}")
    assert rates[4].p >= rates[1].p - 0.02  # wider strikes no less severe
