"""Bench: end-to-end Eyeriss FIT under the protection stack vs ISO 26262.

Shape claims checked: the unprotected accelerator exceeds its FIT
allowance; every protection stage monotonically reduces FIT; the full
stack (SED + SLH + buffer ECC) restores compliance.
"""

from repro.experiments import e2e_protected_fit as exp

from bench_common import BENCH_CFG


def test_bench_e2e_protected_fit(run_once):
    result = run_once(exp.run, BENCH_CFG)
    print("\n" + exp.render(result))
    budget = result["accel_budget"]
    for network, d in result["networks"].items():
        assert d["unprotected"]["total"] > budget, network
        assert d["sed"]["total"] <= d["unprotected"]["total"] + 1e-12
        assert d["full"]["total"] <= d["sed_slh"]["total"] + 1e-12
        assert d["full"]["total"] < budget, network
