"""Bench: observability overhead of the span instrumentation.

Spans are compiled into the hot path (per-layer forward, per-trial
injection) but default to a shared no-op context manager.  Acceptance:
the no-op path costs under 3% of a trial's runtime, so leaving the
instrumentation in place is free for ordinary campaigns.

Measured directly: per-call cost of a disabled ``span()`` times the
number of span entries an instrumented trial actually makes (counted
from a spans-on run), over the measured per-trial runtime of a
spans-off campaign.
"""

from time import perf_counter

from repro.core.campaign import CampaignSpec, run_campaign
from repro.obs.spans import disable_spans, span, timing_snapshot

SPEC = CampaignSpec(network="ConvNet", dtype="FLOAT16", n_trials=60, n_inputs=2, seed=3)


def _noop_span_cost(reps: int = 200_000) -> float:
    disable_spans()
    start = perf_counter()
    for _ in range(reps):
        with span("noop"):
            pass
    return (perf_counter() - start) / reps


def test_bench_obs_span_noop_overhead(run_once):
    # Count how many span entries one trial makes (spans on, small run).
    counting_spec = CampaignSpec(
        network=SPEC.network, dtype=SPEC.dtype, n_trials=8, n_inputs=SPEC.n_inputs, seed=SPEC.seed
    )
    counted = run_campaign(counting_spec, jobs=1, spans=True)
    spans_per_trial = sum(v["count"] for v in counted.metrics["timing"].values()) / counting_spec.n_trials
    disable_spans()
    timing_snapshot(reset=True)

    # Time the default (spans off) campaign and the no-op span itself.
    start = perf_counter()
    result = run_once(run_campaign, SPEC, jobs=1)
    campaign_s = perf_counter() - start
    assert len(result.records) == SPEC.n_trials
    per_trial_s = campaign_s / SPEC.n_trials
    per_call_s = _noop_span_cost()

    overhead = per_call_s * spans_per_trial / per_trial_s
    print(
        f"\nno-op span: {per_call_s * 1e9:.0f} ns/call x {spans_per_trial:.1f} spans/trial"
        f" over {per_trial_s * 1e3:.2f} ms/trial -> {overhead * 100:.3f}% overhead"
    )
    assert overhead < 0.03, f"no-op span overhead {overhead:.2%} exceeds 3%"
