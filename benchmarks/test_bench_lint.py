"""Bench: whole-repo repro-lint wall time (the RP6xx flow engine guard).

The RP6xx family runs an interprocedural fixpoint (call graph + taint
summaries) over every linted file, so lint cost now scales with the
whole tree rather than per-file AST walks.  Acceptance: linting the
entire checkout (src, tests, benchmarks, examples) stays under a
generous ceiling — roughly 10x the seed-time measurement — so the flow
engine cannot quietly regress into an unusable pre-commit hook.

The timing lands in ``benchmarks/BENCH_<date>.json`` via ``run_once``
like every other benchmark, so historical lint cost can be diffed with
``repro-obs`` alongside campaign metrics.
"""

from pathlib import Path
from time import perf_counter

from repro.analysis import lint_paths, load_config

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Wall-clock ceiling for one full-repo lint (seed measurement: ~6 s).
LINT_CEILING_S = 60.0


def _lint_repo():
    config = load_config(REPO_ROOT / "pyproject.toml")
    paths = [
        REPO_ROOT / sub
        for sub in ("src", "tests", "benchmarks", "examples")
        if (REPO_ROOT / sub).is_dir()
    ]
    return lint_paths(paths, config=config, root=REPO_ROOT)


def test_bench_lint_whole_repo(run_once):
    start = perf_counter()
    findings = run_once(_lint_repo)
    elapsed = perf_counter() - start

    print(f"\nrepro-lint over the full checkout: {elapsed:.2f} s, {len(findings)} findings")
    assert findings == [], "\n".join(f.render() for f in findings)
    assert elapsed < LINT_CEILING_S, (
        f"whole-repo lint took {elapsed:.1f} s (ceiling {LINT_CEILING_S:.0f} s); "
        "the RP6xx flow fixpoint has regressed"
    )
