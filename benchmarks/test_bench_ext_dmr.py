"""Bench (extension): SED vs bit-wise DMR detection baseline.

Shape claims checked: DMR reaches total recall but its paper-style
precision collapses (it flags masked-to-be errors, section 5.1.4),
while SED keeps precision near 100%.
"""

from repro.experiments import ext_dmr_baseline as exp

from bench_common import BENCH_CFG


def test_bench_ext_dmr(run_once):
    result = run_once(exp.run, BENCH_CFG)
    print("\n" + exp.render(result))
    for network, row in result["networks"].items():
        assert row["sed"]["precision"] >= row["dmr"]["precision"], network
        if row["dmr"]["total_sdc"]:
            assert row["dmr"]["recall"] == 1.0
