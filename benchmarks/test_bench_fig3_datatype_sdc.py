"""Bench: regenerate Figure 3 (SDC probability per data type/network).

Shape claims checked: the wide-range fixed point (32b_rb10) is far more
SDC-prone than the narrow formats (32b_rb26/16b_rb10), for every network.
"""

from repro.experiments import fig3_datatype_sdc as exp

from bench_common import BENCH_CFG


def test_bench_fig3_datatype_sdc(run_once):
    result = run_once(exp.run, BENCH_CFG)
    print("\n" + exp.render(result))
    for network, per_dtype in result["rates"].items():
        wide = per_dtype["32b_rb10"]["sdc1"][0]
        narrow = per_dtype["32b_rb26"]["sdc1"][0]
        assert wide >= narrow, network
    # ConvNet (shallow, 10 outputs) is the most FxP-fragile network.
    assert (
        result["rates"]["ConvNet"]["32b_rb10"]["sdc1"][0]
        >= result["rates"]["AlexNet"]["32b_rb10"]["sdc1"][0]
    )
