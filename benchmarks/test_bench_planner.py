"""Bench: the protection planner solving the ISO 26262 budget.

Measures the end-to-end cost of: datapath + buffer campaigns, per-bit
sensitivity profile, and the plan enumeration — then checks the
recommended stack actually complies and costs less than naive full
protection (TMR everywhere + ECC everywhere).
"""

import numpy as np

from repro.accel import EYERISS_16NM
from repro.core.campaign import CampaignSpec, run_campaign
from repro.core.planner import PlannerInputs, plan_protection
from repro.experiments.table8_buffer_fit import COMPONENT_SCOPES
from repro.zoo import get_network

from bench_common import TRIALS

BUDGET = 0.1  # accelerator allowance (1% of the 10-FIT SoC budget)


def _measure():
    network = "ConvNet"
    dtype = "16b_rb10"
    dp = run_campaign(
        CampaignSpec(network=network, dtype=dtype, n_trials=TRIALS, seed=93,
                     with_detection=True)
    )
    buffer_sdc = {}
    for component, scope in COMPONENT_SCOPES.items():
        res = run_campaign(
            CampaignSpec(network=network, dtype=dtype, target=scope,
                         n_trials=TRIALS, seed=94)
        )
        buffer_sdc[component] = res.sdc_rate().p
    q = dp.detection_quality()
    per_bit = np.array([dp.rate_by_bit().get(b, None) for b in range(16)])
    per_bit = np.array([r.p if r is not None else 0.0 for r in per_bit])
    net = get_network(network)
    acts = sum(int(np.prod(net.shapes[i + 1])) for i in net.block_output_indices())
    inputs = PlannerInputs(
        config=EYERISS_16NM,
        datapath_sdc=dp.sdc_rate().p,
        buffer_sdc=buffer_sdc,
        sed_recall=q.recall if q.total_sdc else 0.5,
        per_bit_fit=per_bit,
        act_elements_per_inference=acts,
        macs_per_inference=net.total_macs(),
    )
    return plan_protection(inputs, fit_budget=BUDGET)


def test_bench_planner(run_once):
    plans = run_once(_measure)
    print()
    for plan in plans[:4]:
        print(plan.describe())
    best = plans[0]
    assert best.total_fit <= BUDGET
    full = next(
        p for p in plans
        if p.use_sed and p.slh_target == max(q.slh_target for q in plans)
        and len(p.ecc_components) == 4
    )
    assert best.area_overhead <= full.area_overhead + 1e-9
