"""Bench (extension): LRN's contribution to error masking (ablation).

Shape claims checked: with LRN no escaping early-layer fault reaches the
output out-of-range; without LRN a large fraction does, and the mean
surviving deviation is astronomically larger (paper section 6.1,
implication 3).
"""

from repro.experiments import ext_lrn_ablation as exp

from bench_common import BENCH_CFG


def test_bench_ext_lrn(run_once):
    result = run_once(exp.run, BENCH_CFG)
    print("\n" + exp.render(result))
    with_lrn = result["with_lrn"]
    without = result["without_lrn"]
    assert with_lrn["escaped"].p < 0.05
    assert without["escaped"].p > 0.1
    assert without["mean_distance"] > 1e6 * max(with_lrn["mean_distance"], 1e-9)
