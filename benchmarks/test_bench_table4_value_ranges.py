"""Bench: regenerate Table 4 (fault-free ACT ranges per layer).

Shape claim checked: the calibrated ImageNet networks reproduce the
paper's per-layer dynamic ranges within a small factor.
"""

from repro.experiments import table4_value_ranges as exp

from bench_common import BENCH_CFG


def test_bench_table4_value_ranges(run_once):
    result = run_once(exp.run, BENCH_CFG)
    print("\n" + exp.render(result))
    for network in ("AlexNet", "CaffeNet", "NiN"):
        for blk, lo, hi, plo, phi in result["ranges"][network]:
            got = max(abs(lo), abs(hi))
            want = max(abs(plo), abs(phi))
            assert 0.25 * want < got < 4.0 * want, (network, blk)
