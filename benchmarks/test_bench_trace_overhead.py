"""Bench: the propagation flight recorder must be free when off.

Every trial now passes through the tracer's hook points even when no
tracing was requested: ``CampaignSpec.trace_selected`` decides whether
the trial is traced (computing the ``traced`` flag in ``sample_trial``)
and the emission guard in ``_emit_trace`` checks that flag before
returning.  ``trace_mode="off"`` is the default for every campaign in
the repo, so that off-path cost is paid by *all* existing workloads —
the ``OBL-TRACE-OVERHEAD`` obligation pins it below 1% of per-trial
runtime.

Protocol: time one serial ConvNet datapath campaign (trace off) for the
per-trial denominator, then microbench the per-trial hook work itself —
one ``trace_selected`` call plus the ``meta.get`` guard — over enough
iterations to resolve it.  The ratio is the overhead percentage; it is
a vast overestimate of reality (the hook is two dict/modulo operations
against a forward pass over a whole network) which is exactly what a
"must be free" floor wants.
"""

from time import perf_counter

from conftest import _registry
from repro.core.campaign import CampaignSpec, run_campaign

SPEC = CampaignSpec(
    network="ConvNet",
    dtype="FLOAT16",
    target="datapath",
    n_trials=64,
    seed=0,
)
HOOK_ITERS = 200_000


def _measure():
    run_campaign(SPEC)  # warm: weight cache on disk, network memo
    start = perf_counter()
    run_campaign(SPEC)
    campaign_s = perf_counter() - start
    per_trial_s = campaign_s / SPEC.n_trials

    meta = {"traced": False}
    start = perf_counter()
    for trial in range(HOOK_ITERS):
        if SPEC.trace_selected(trial) or meta.get("traced"):
            raise AssertionError("trace_mode=off selected a trial")
    hook_s = (perf_counter() - start) / HOOK_ITERS
    return campaign_s, per_trial_s, hook_s


def test_bench_trace_overhead(run_once):
    campaign_s, per_trial_s, hook_s = run_once(_measure)
    overhead_pct = 100.0 * hook_s / per_trial_s
    registry = _registry()
    registry.set_gauge("trace/off_campaign_s", campaign_s)
    registry.set_gauge("trace/off_hook_us", hook_s * 1e6)
    registry.set_gauge("trace/off_overhead_pct", overhead_pct)
    print(f"\ncampaign (trace off)   {campaign_s:8.2f}s  ({per_trial_s * 1e3:.2f} ms/trial)")
    print(f"per-trial hook cost    {hook_s * 1e6:8.3f}us  ({overhead_pct:.4f}% of a trial)")
    assert overhead_pct < 1.0, (
        f"tracing-off hook costs {overhead_pct:.3f}% of per-trial runtime (floor: < 1%)"
    )
