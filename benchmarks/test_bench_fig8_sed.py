"""Bench: regenerate Figure 8 (SED precision/recall).

Shape claims checked: precision and recall in the paper's ballpark
(90.21% / 92.5% averages) for the symptom-rich configurations.
"""

from repro.experiments import fig8_sed as exp

from bench_common import BENCH_CFG
from conftest import _registry


def test_bench_fig8_sed(run_once):
    result = run_once(exp.run, BENCH_CFG)
    print("\n" + exp.render(result))
    registry = _registry()
    registry.set_gauge("sed/avg_precision", result["avg_precision"])
    registry.set_gauge("sed/avg_recall", result["avg_recall"])
    assert result["avg_precision"] > 0.85
    assert result["avg_recall"] > 0.6
