"""Bench: regenerate Table 3 (data types used)."""

from repro.experiments import table3_dtypes as exp

from bench_common import BENCH_CFG


def test_bench_table3_dtypes(run_once):
    result = run_once(exp.run, BENCH_CFG)
    print("\n" + exp.render(result))
    names = [d["name"] for d in result["dtypes"]]
    assert names == ["DOUBLE", "FLOAT", "FLOAT16", "32b_rb26", "32b_rb10", "16b_rb10"]
