"""Benchmark fixtures.

Each benchmark regenerates one table/figure of the paper (printing the
paper-style rows) while pytest-benchmark times the cold run.  Campaigns
inside one benchmark run are memoized per-process, so a single timed
round reflects the real cost.

Timings are also captured into a :class:`repro.obs.metrics.MetricsRegistry`
and persisted at session end as ``benchmarks/BENCH_<date>.json`` — a
plain metrics snapshot, so historical runs can be merged or diffed with
the same tooling as campaign metrics (``merge_snapshots``, ``repro-obs``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

os.environ.setdefault(
    "REPRO_CACHE",
    str(Path(__file__).resolve().parent.parent / ".cache" / "repro-weights"),
)

BENCH_DIR = Path(__file__).resolve().parent

_metrics = None


def _registry():
    global _metrics
    if _metrics is None:
        from repro.obs.metrics import MetricsRegistry

        _metrics = MetricsRegistry()
    return _metrics


@pytest.fixture
def run_once(benchmark, request):
    """Time exactly one cold execution of ``fn`` and return its result."""

    def _run(fn, *args, **kwargs):
        registry = _registry()
        start = time.perf_counter()
        try:
            return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
        finally:
            registry.time_span(f"bench/{request.node.name}", time.perf_counter() - start)
            registry.inc("benchmarks")

    return _run


def _merge_same_day(existing: dict, snapshot: dict) -> dict:
    """Fold a previous same-day snapshot into this session's.

    A second benchmark session on the same date must *merge* rather than
    clobber: otherwise a partial run (one benchmark file) would erase the
    gauges every other file produced that day, and a gate floor check
    could read a partial snapshot.  Counters/histograms/timing merge with
    the standard session algebra; gauges are re-measurements, so this
    session's value replaces the old one (max-merging would let a stale
    high-water mark mask a real regression) while untouched gauges from
    earlier sessions survive.
    """
    from repro.obs.metrics import merge_snapshots

    merged = merge_snapshots(existing, snapshot)
    merged["gauges"] = {**existing.get("gauges", {}), **snapshot.get("gauges", {})}
    return merged


def pytest_sessionfinish(session, exitstatus):
    """Persist the session's benchmark timings as a metrics snapshot."""
    del session
    if _metrics is None:
        return
    _metrics.inc("exitstatus/nonzero" if exitstatus else "exitstatus/zero")
    snapshot = _metrics.snapshot()
    payload = {
        "format": "repro-bench-metrics",
        "version": 1,
        "date": time.strftime("%Y-%m-%d"),
        "snapshot": snapshot,
    }
    out_path = BENCH_DIR / f"BENCH_{payload['date']}.json"
    try:
        existing = json.loads(out_path.read_text(encoding="utf-8"))
        if (
            existing.get("format") == payload["format"]
            and existing.get("date") == payload["date"]
        ):
            payload["snapshot"] = _merge_same_day(existing.get("snapshot", {}), snapshot)
    except (OSError, ValueError):
        pass  # no (or torn) previous snapshot today: publish ours alone
    try:
        from repro.core.checkpoint import atomic_write_text

        atomic_write_text(out_path, json.dumps(payload, indent=2, sort_keys=True) + "\n")
    except OSError:
        pass  # a read-only checkout must not fail the benchmark run


def pytest_collection_modifyitems(config, items):
    # Benchmarks live here; plain `pytest benchmarks/` should still work
    # without the tests/ conftest.
    del config, items
