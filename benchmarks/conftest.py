"""Benchmark fixtures.

Each benchmark regenerates one table/figure of the paper (printing the
paper-style rows) while pytest-benchmark times the cold run.  Campaigns
inside one benchmark run are memoized per-process, so a single timed
round reflects the real cost.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

os.environ.setdefault(
    "REPRO_CACHE",
    str(Path(__file__).resolve().parent.parent / ".cache" / "repro-weights"),
)


@pytest.fixture
def run_once(benchmark):
    """Time exactly one cold execution of ``fn`` and return its result."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run


def pytest_collection_modifyitems(config, items):
    # Benchmarks live here; plain `pytest benchmarks/` should still work
    # without the tests/ conftest.
    del config, items
