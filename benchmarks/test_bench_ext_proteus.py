"""Bench (extension): Proteus reduced-precision storage reliability.

The paper defers this evaluation to future work (section 6.1); this
bench carries it out.  Shape claims checked: Proteus's narrow storage
cuts every buffer component's SDC probability (no redundant dynamic
range to escape into) and the total buffer FIT by well over the 2x that
capacity alone would buy.
"""

from repro.experiments import ext_proteus as exp

from bench_common import BENCH_CFG


def test_bench_ext_proteus(run_once):
    result = run_once(exp.run, BENCH_CFG)
    print("\n" + exp.render(result))
    for component, d in result["components"].items():
        assert d["proteus_sdc"] <= d["wide_sdc"] + 0.02, component
    assert result["proteus_total"] < 0.5 * result["wide_total"]
