"""Bench: regenerate Table 6 (datapath FIT per data type and network).

Shape claims checked: replacing 32b_rb10 with 32b_rb26 cuts the FIT by
a large factor (paper: >2 orders of magnitude), and 16-bit formats have
lower FIT than their 32-bit counterparts at comparable SDC rates.
"""

from repro.experiments import table6_datapath_fit as exp

from bench_common import BENCH_CFG


def test_bench_table6_datapath_fit(run_once):
    result = run_once(exp.run, BENCH_CFG)
    print("\n" + exp.render(result))
    for network in ("AlexNet", "CaffeNet", "NiN"):
        wide = result["fit"][(network, "32b_rb10")][0]
        narrow = result["fit"][(network, "32b_rb26")][0]
        assert wide > 3 * max(narrow, 1e-9), network
