"""Shared benchmark configuration.

`TRIALS` balances statistical resolution against wall-clock time; specs
are shared across benchmarks (e.g. Figure 3's campaigns feed Table 6)
so the in-process campaign memo removes duplicate work.
"""

from repro.experiments.common import ExperimentConfig

__all__ = ["TRIALS", "BENCH_CFG"]

#: Injections per campaign for benchmark runs.
TRIALS = 250

#: Standard benchmark configuration (reduced-scale networks, seed 0).
BENCH_CFG = ExperimentConfig(trials=TRIALS, scale="reduced", seed=0, jobs=1)
