"""Ablation: Table-4 range calibration vs plain He initialization.

DESIGN.md substitutes the BVLC weights with He-init weights calibrated
to the paper's per-layer activation ranges.  This bench measures the
high-order-bit SDC sensitivity of AlexNet/32b_rb10 with and without the
calibration step: the calibrated network exercises the format's
redundant dynamic range exactly as the paper describes, while the raw
He-init network's tiny activations leave high integer bits
under-exercised relative to value scale.
"""

import numpy as np

from repro.core.fault import sample_datapath_fault
from repro.core.injector import inject_datapath
from repro.core.outcome import classify_outcome
from repro.dtypes import FXP_32B_RB10
from repro.utils.rng import child_rng
from repro.zoo import eval_inputs, get_network
from repro.zoo.alexnet import build_alexnet
from repro.zoo.weights import he_init


def _sdc_rate(net, x, trials, seed):
    golden = net.forward(x, dtype=FXP_32B_RB10, record=True)
    hits = 0
    for t in range(trials):
        rng = child_rng(seed, t)
        fault = sample_datapath_fault(net, FXP_32B_RB10, rng)
        inj = inject_datapath(net, FXP_32B_RB10, fault, golden)
        out = classify_outcome(golden, inj.scores, net.has_confidence, masked=inj.masked)
        hits += out.sdc1
    return hits / trials


def test_bench_ablation_calibration(run_once):
    x = eval_inputs("AlexNet", 1)[0]
    calibrated = get_network("AlexNet")
    raw = build_alexnet("reduced")
    he_init(raw, seed=7)

    def measure():
        return (_sdc_rate(calibrated, x, 250, 90), _sdc_rate(raw, x, 250, 90))

    cal_rate, raw_rate = run_once(measure)
    print(f"\ncalibrated SDC-1: {cal_rate:.2%}   raw He-init SDC-1: {raw_rate:.2%}")
    # Calibration changes the measured sensitivity — the substitution is
    # load-bearing, not cosmetic.
    assert cal_rate != raw_rate or cal_rate > 0
