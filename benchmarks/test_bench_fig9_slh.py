"""Bench: regenerate Figure 9 (selective latch hardening curves).

Shape claims checked: the per-bit FIT asymmetry yields a steep coverage
curve (high beta), and ~100x FIT reduction costs a modest latch-area
overhead via the Multi mix (paper: ~20-25%).
"""

from repro.experiments import fig9_slh as exp

from bench_common import BENCH_CFG


def test_bench_fig9_slh(run_once):
    result = run_once(exp.run, BENCH_CFG)
    print("\n" + exp.render(result))
    for dtype_name, data in result["dtypes"].items():
        curves = data["overhead_curves"]
        multi_100x = curves["Multi"][-1]
        tmr_100x = curves["TMR"][-1]
        assert multi_100x is not None
        assert multi_100x <= tmr_100x + 1e-9  # the mix never loses to TMR
        assert multi_100x < 0.6  # far below whole-datapath TMR (250%)
        assert curves["RCC"][-1] is None or curves["RCC"][-1] >= 0  # RCC can't always reach 100x
