"""Bench: regenerate Figure 6 (SDC probability per layer position).

Shape claim checked: fully-connected layers of AlexNet/CaffeNet are at
least as SDC-prone as the LRN-protected first convolutional layers.
"""

from repro.experiments import fig6_layer_sdc as exp

from bench_common import BENCH_CFG


def test_bench_fig6_layer_sdc(run_once):
    result = run_once(exp.run, BENCH_CFG)
    print("\n" + exp.render(result))
    for network in ("AlexNet", "CaffeNet"):
        per_block = result["layers"][network]
        fc_avg = sum(per_block[b][0] for b in (6, 7, 8)) / 3
        lrn_avg = sum(per_block[b][0] for b in (1, 2)) / 2
        assert fc_avg >= lrn_avg, network
