"""Bench: shared-memory golden state vs per-worker golden inference.

Without shared golden state every pool worker that receives a chunk
rebuilds the campaign task: golden inference over every evaluation
input plus SED detector learning, duplicated per worker — pure
overhead, since trial outcomes depend on the golden *bits*, not on who
computed them.  With ``shared_golden=True`` the parent computes the
golden state once, publishes it into a ``multiprocessing.shared_memory``
segment and workers attach read-only views (docs/architecture.md,
"Shared golden state").  Results are bit-identical by contract; this
bench measures what the sharing buys and enforces the >= 1.5x floor at
jobs >= 2.

Protocol: the init-dominated regime the sharing exists for — full-scale
NiN (all-conv, so forwards are expensive while the weight payload stays
small) with the SED detector, 8 evaluation inputs, and a chunk size
that puts work on both workers so each one pays the duplicated init.
One timed run per mode after a warm-up that fills the on-disk weight
cache and the in-process network memo (inherited by forked workers, so
neither mode pays weight generation).
"""

from time import perf_counter

from conftest import _registry
from repro.core.campaign import CampaignSpec, run_campaign
from repro.gate.recipes import _comparable_summary

SPEC = CampaignSpec(
    network="NiN",
    dtype="FLOAT16",
    target="datapath",
    n_trials=32,
    scale="full",
    n_inputs=8,
    seed=0,
    with_detection=True,
    detector_kind="sed",
)
JOBS = 2
BATCH = 16
CHUNK = 16  # 32 trials / 16 = one chunk per worker: both must initialise


def _timed(fn):
    start = perf_counter()
    result = fn()
    return perf_counter() - start, result


def _measure():
    run = lambda shm: run_campaign(
        SPEC, jobs=JOBS, batch=BATCH, chunk=CHUNK, shared_golden=shm
    )
    run(True)  # warm: weight cache on disk, network memo in the parent
    baseline_s, baseline = _timed(lambda: run(False))
    shm_s, shared = _timed(lambda: run(True))
    identical = _comparable_summary(baseline) == _comparable_summary(shared)
    return baseline_s, shm_s, identical


def test_bench_shm_golden(run_once):
    baseline_s, shm_s, identical = run_once(_measure)
    speedup = baseline_s / shm_s
    registry = _registry()
    registry.set_gauge("campaign/shm_baseline_s", baseline_s)
    registry.set_gauge("campaign/shm_shared_s", shm_s)
    registry.set_gauge("campaign/shm_speedup", speedup)
    print(f"\nper-worker golden inference  {baseline_s:6.2f}s")
    print(f"shared golden segment        {shm_s:6.2f}s  ({speedup:.2f}x)")
    assert identical, "shared-golden summary diverges from per-worker baseline"
    assert speedup >= 1.5, (
        f"shared golden state below the 1.5x floor at jobs={JOBS}: {speedup:.2f}x"
    )
