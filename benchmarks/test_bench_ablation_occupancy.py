"""Ablation: static size-weighted vs schedule-aware fault sampling.

The paper samples buffer faults over the data at rest; our occupancy
extension draws the victim layer from the row-stationary schedule's
bit-cycle exposures instead (a strike uniform in space *and* time).
This bench compares the resulting SDC probabilities and shows the
mapping-aware layer mix.
"""

from repro.core.campaign import CampaignSpec, run_campaign

from bench_common import TRIALS


def test_bench_ablation_occupancy(run_once):
    base = dict(network="AlexNet", dtype="16b_rb10", target="layer_weight",
                n_trials=TRIALS, seed=95)

    def sweep():
        static = run_campaign(CampaignSpec(**base))
        weighted = run_campaign(CampaignSpec(**base, occupancy_weighted=True))
        return static, weighted

    static, weighted = run_once(sweep)
    print()
    print(f"static sampling:    SDC-1 {static.sdc_rate()}")
    print(f"occupancy sampling: SDC-1 {weighted.sdc_rate()}")
    print("victim-layer mix (static):  ",
          {b: f"{r.n}" for b, r in static.rate_by_block().items()})
    print("victim-layer mix (weighted):",
          {b: f"{r.n}" for b, r in weighted.rate_by_block().items()})
    # Both are valid strike models; the block mixes must differ, which is
    # the point of the ablation.
    static_mix = [r.n for r in static.rate_by_block().values()]
    weighted_mix = [r.n for r in weighted.rate_by_block().values()]
    assert static_mix != weighted_mix
