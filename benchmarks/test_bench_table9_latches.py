"""Bench: regenerate Table 9 (hardened latch design points) and verify
the hardening-model invariants they induce."""

import numpy as np

from repro.core.hardening import HARDENING_TECHNIQUES, optimize_hardening
from repro.utils.tables import format_table


def test_bench_table9_latches(run_once):
    rows = [["Baseline", "1x", "1x"]] + [
        [t.name, f"{t.area:g}x", f"{t.fit_reduction:g}x"] for t in HARDENING_TECHNIQUES
    ]
    print("\n" + format_table(
        ["latch type", "area overhead", "FIT rate reduction"], rows,
        title="Table 9: hardened latches used in design space exploration",
    ))

    def plan_sweep():
        fit = np.geomspace(1.0, 1e-3, 16)
        return [optimize_hardening(fit, t) for t in (6.3, 37.0, 100.0)]

    plans = run_once(plan_sweep)
    overheads = [p.area_overhead for p in plans]
    assert overheads == sorted(overheads)  # stronger target costs more
    assert all(p.achieved_reduction >= t for p, t in zip(plans, (6.3, 37.0, 100.0)))
