"""Bench: regenerate Figure 7 (per-layer Euclidean distance traces).

Shape claims checked: AlexNet/CaffeNet attenuate the layer-1 deviation
sharply after their LRNs; NiN (no normalization) carries it flat.
"""

from repro.experiments import fig7_euclidean as exp

from bench_common import BENCH_CFG


def test_bench_fig7_euclidean(run_once):
    result = run_once(exp.run, BENCH_CFG)
    print("\n" + exp.render(result))
    for network in ("AlexNet", "CaffeNet"):
        d = list(result["distances"][network].values())
        assert d[0] > 100 * d[1], network
    nin = list(result["distances"]["NiN"].values())
    assert nin[1] > 0.3 * nin[0]
