"""Figure-2 scenario: a single soft error flips an object classification.

The paper motivates the study with a self-driving car whose DNN
misclassifies a truck as a bird under one soft error, so the brakes are
never applied.  This example hunts for exactly such a flip: it runs
injections into the trained ConvNet until one changes the top-ranked
class, then prints the golden and faulty rankings side by side together
with the corrupted value, the flipped bit, and whether the symptom-based
detector would have caught it.

Run:  python examples/self_driving_misclassification.py
"""

from __future__ import annotations

from repro.core import learn_detector, sample_datapath_fault
from repro.core.injector import inject_datapath
from repro.core.outcome import classify_outcome
from repro.dtypes import get_dtype
from repro.utils.rng import child_rng
from repro.utils.tables import format_table
from repro.zoo import eval_inputs, get_network

#: Object labels for the 10 synthetic classes (CIFAR-10's categories).
LABELS = ("airplane", "automobile", "bird", "cat", "deer",
          "dog", "frog", "horse", "ship", "truck")


def main() -> None:
    dtype = get_dtype("32b_rb10")  # the paper's most SDC-prone format
    net = get_network("ConvNet")
    detector = learn_detector(net, eval_inputs("ConvNet", 16, seed=200), dtype=dtype)
    inputs = eval_inputs("ConvNet", 8, seed=400)

    for trial in range(20_000):
        rng = child_rng(99, trial)
        x = inputs[trial % len(inputs)]
        golden = net.forward(x, dtype=dtype, record=True)
        fault = sample_datapath_fault(net, dtype, rng)
        injection = inject_datapath(net, dtype, fault, golden, record=True)
        outcome = classify_outcome(golden, injection.scores, True, masked=injection.masked)
        if not outcome.sdc1:
            continue

        layer = net.layers[fault.layer_index]
        detected = detector.scan(net, injection.faulty_activations, injection.resume_index)
        print(f"SDC found after {trial + 1} injections\n")
        print(f"fault site : layer {layer.name!r} (block {layer.block}), "
              f"{fault.latch} latch, MAC step {fault.step}, bit {fault.bit} "
              f"({dtype.field_of(fault.bit)})")
        print(f"value      : {injection.value_before:.6g}  ->  {injection.value_after:.6g}\n")

        rows = []
        g_order = golden.topk(3)
        f_order = injection.scores.argsort()[::-1][:3]
        for rank in range(3):
            gi, fi = int(g_order[rank]), int(f_order[rank])
            rows.append([
                rank + 1,
                f"{LABELS[gi]} ({golden.scores[gi]:.3f})",
                f"{LABELS[fi]} ({injection.scores[fi]:.3f})",
            ])
        print(format_table(["rank", "fault-free run", "faulty run"], rows,
                           title="classification before/after the soft error"))
        g_top, f_top = LABELS[golden.top1()], LABELS[int(injection.scores.argmax())]
        print(f"\nthe {g_top} was misclassified as a {f_top} -- "
              "in a vehicle, the wrong action follows.")
        print("symptom-based detector fired:" , "YES" if detected else "NO",
              "(detected faults trigger re-execution instead of a wrong action)")
        return
    print("no SDC found within the injection budget; rerun with another seed")


if __name__ == "__main__":
    main()
