"""Full protection pipeline: SED + SLH + buffer ECC against ISO 26262.

Walks the paper's section-6 mitigation story end to end for one network:

1. measure datapath and buffer SDC probabilities by fault injection;
2. learn and evaluate the symptom-based detector (precision/recall);
3. derive the per-bit FIT profile and plan selective latch hardening
   to a 100x datapath reduction, reporting the latch-area overhead;
4. stack SED + SLH + SEC-DED buffer ECC and compare each stage's total
   Eyeriss-16nm FIT against the accelerator's ISO 26262 allowance.

Run:  python examples/protection_pipeline.py [--network AlexNet]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.accel import EYERISS_16NM
from repro.core import (
    CampaignSpec,
    eyeriss_total_fit,
    optimize_hardening,
    run_campaign,
)
from repro.experiments.table8_buffer_fit import COMPONENT_SCOPES
from repro.utils.tables import format_table

DTYPE = "16b_rb10"  # Eyeriss's native format
ACCEL_BUDGET = 0.1  # FIT; a small slice of the 10-FIT SoC budget
SLH_TARGET = 100.0
ECC_RESIDUAL = 0.01


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--network", default="AlexNet")
    parser.add_argument("--trials", type=int, default=300)
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args()

    # -- step 1+2: measure SDC probabilities, evaluate SED ----------------- #
    print(f"[1/4] datapath campaign on {args.network} ({DTYPE})...")
    dp = run_campaign(
        CampaignSpec(network=args.network, dtype=DTYPE, n_trials=args.trials,
                     seed=17, with_detection=True),
        jobs=args.jobs,
    )
    tp = dp.detection_quality().true_positives
    total_sdc = dp.detection_quality().total_sdc

    buffer_sdc = {}
    print("[2/4] buffer campaigns (Global Buffer / Filter SRAM / Img REG / PSum REG)...")
    for component, scope in COMPONENT_SCOPES.items():
        res = run_campaign(
            CampaignSpec(network=args.network, dtype=DTYPE, target=scope,
                         n_trials=args.trials, seed=18, with_detection=True),
            jobs=args.jobs,
        )
        buffer_sdc[component] = res.sdc_rate().p
        q = res.detection_quality()
        tp += q.true_positives
        total_sdc += q.total_sdc
    recall = tp / total_sdc if total_sdc else 1.0
    print(f"      SED recall across components: {recall:.1%}")

    # -- step 3: per-bit FIT -> SLH plan ------------------------------------ #
    print(f"[3/4] per-bit sensitivity for SLH (target {SLH_TARGET:g}x)...")
    per_bit = []
    from repro.dtypes import get_dtype

    width = get_dtype(DTYPE).width
    per_bit_trials = max(20, args.trials // 8)
    for bit in range(width):
        res = run_campaign(
            CampaignSpec(network=args.network, dtype=DTYPE, n_trials=per_bit_trials,
                         seed=19 + bit, bit=bit),
            jobs=args.jobs,
        )
        per_bit.append(res.sdc_rate().p)
    plan = optimize_hardening(np.array(per_bit), SLH_TARGET)
    hardened = {t: plan.assignment.count(t) for t in set(plan.assignment)}
    if sum(per_bit) == 0:
        print("      measured datapath SDC is ~0 at this sample size; "
              "no hardening needed (increase --trials for finer resolution)")
        slh_reduction = 1.0
    else:
        print(f"      plan: {hardened}, latch-area overhead {plan.area_overhead:.1%}, "
              f"achieved reduction {plan.achieved_reduction:.3g}x")
        slh_reduction = min(plan.achieved_reduction, SLH_TARGET)

    # -- step 4: stack the protections -------------------------------------- #
    datapath_sdc = {"datapath": dp.sdc_rate().p}
    unprotected = eyeriss_total_fit(EYERISS_16NM, datapath_sdc, buffer_sdc)
    sed = eyeriss_total_fit(EYERISS_16NM, datapath_sdc, buffer_sdc, detector_recall=recall)
    sed_slh = dict(sed)
    sed_slh["datapath"] = sed["datapath"] / slh_reduction
    sed_slh["total"] = sum(v for k, v in sed_slh.items() if k != "total")
    full_stack = {k: (v if k == "datapath" else v * ECC_RESIDUAL)
                  for k, v in sed_slh.items() if k != "total"}
    full_stack["total"] = sum(full_stack.values())

    rows = [
        ["unprotected", f"{unprotected['total']:.4g}",
         "PASS" if unprotected["total"] < ACCEL_BUDGET else "FAIL"],
        ["+ SED (software)", f"{sed['total']:.4g}",
         "PASS" if sed["total"] < ACCEL_BUDGET else "FAIL"],
        ["+ SLH (datapath latches)", f"{sed_slh['total']:.4g}",
         "PASS" if sed_slh["total"] < ACCEL_BUDGET else "FAIL"],
        ["+ ECC (buffers)", f"{full_stack['total']:.4g}",
         "PASS" if full_stack["total"] < ACCEL_BUDGET else "FAIL"],
    ]
    print()
    print(format_table(
        ["protection stage", "total FIT", f"< {ACCEL_BUDGET:g} FIT budget"],
        rows,
        title=f"[4/4] Eyeriss-16nm FIT for {args.network} vs ISO 26262 allowance",
    ))


if __name__ == "__main__":
    main()
