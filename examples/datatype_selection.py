"""Design-space exploration: choose a just-enough data type.

Paper implication 1 (section 6.1): a DNN system should use a format with
just enough dynamic range and precision — the redundant range of wide
formats is exactly what soft errors exploit.  This example sweeps all six
formats on one network, reporting classification fidelity (vs the DOUBLE
reference), the SDC-1 probability under datapath faults, and the
resulting Eyeriss-16nm datapath FIT, then flags the formats that are both
accurate and resilient.

Run:  python examples/datatype_selection.py [--network AlexNet]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.accel import EYERISS_16NM, DatapathModel
from repro.core import CampaignSpec, datapath_fit, run_campaign
from repro.dtypes import DTYPES, get_dtype
from repro.utils.tables import format_table
from repro.zoo import eval_inputs, get_network


def fidelity(network, inputs, dtype_name: str) -> float:
    """Fraction of inputs whose top-1 matches the DOUBLE reference."""
    dtype = get_dtype(dtype_name)
    agree = 0
    for x in inputs:
        ref = network.forward(x, dtype=get_dtype("DOUBLE"), record=False).top1()
        got = network.forward(x, dtype=dtype, record=False).top1()
        agree += ref == got
    return agree / len(inputs)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--network", default="AlexNet")
    parser.add_argument("--trials", type=int, default=400)
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args()

    network = get_network(args.network)
    inputs = eval_inputs(args.network, 6, seed=500)

    rows = []
    best = None
    for name in DTYPES:
        spec = CampaignSpec(network=args.network, dtype=name, n_trials=args.trials, seed=7)
        sdc = run_campaign(spec, jobs=args.jobs).sdc_rate()
        dp = DatapathModel(n_pes=EYERISS_16NM.n_pes, data_width=get_dtype(name).width)
        fit = sum(c.fit for c in datapath_fit(dp, {"datapath": sdc.p}))
        acc = fidelity(network, inputs, name)
        rows.append([name, f"{acc:.0%}", str(sdc), f"{fit:.4g}"])
        if acc >= 1.0 and (best is None or fit < best[1]):
            best = (name, fit)

    print(format_table(
        ["data type", "top-1 fidelity vs DOUBLE", "SDC-1 (95% CI)", "datapath FIT"],
        rows,
        title=f"data-type design space for {args.network} (Eyeriss-16nm PE array)",
    ))
    if best:
        print(f"\njust-enough choice: {best[0]} — full classification fidelity at "
              f"the lowest FIT ({best[1]:.4g}).")
        wide = next(r for r in rows if r[0] == "32b_rb10")
        print(f"compare 32b_rb10 (redundant range): FIT {wide[3]} — the paper's "
              "order-of-magnitude penalty for over-provisioned dynamic range.")


if __name__ == "__main__":
    main()
