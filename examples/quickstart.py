"""Quickstart: inject soft errors into a DNN and measure SDC rates.

Runs a small datapath fault-injection campaign on the trained ConvNet
(CIFAR-10-like task) in the FLOAT16 format, prints the four SDC-class
probabilities with confidence intervals, and converts the SDC-1 rate into
an Eyeriss-16nm datapath FIT rate (paper Equation 1).

Run:  python examples/quickstart.py [--trials 500]
"""

from __future__ import annotations

import argparse

from repro.accel import EYERISS_16NM, DatapathModel
from repro.core import CampaignSpec, datapath_fit, run_campaign
from repro.dtypes import get_dtype
from repro.utils.tables import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=500)
    parser.add_argument("--network", default="ConvNet")
    parser.add_argument("--dtype", default="FLOAT16")
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args()

    print(f"Injecting {args.trials} single-bit datapath faults into "
          f"{args.network} ({args.dtype})...")
    spec = CampaignSpec(
        network=args.network,
        dtype=args.dtype,
        target="datapath",
        n_trials=args.trials,
        seed=2017,
    )
    result = run_campaign(spec, jobs=args.jobs)

    rows = []
    for cls, rate in result.sdc_rates().items():
        label = {"sdc1": "SDC-1", "sdc5": "SDC-5", "sdc10": "SDC-10%", "sdc20": "SDC-20%"}[cls]
        rows.append([label, str(rate)])
    print()
    print(format_table(["outcome class", "probability (95% CI)"], rows,
                       title=f"{args.network} / {args.dtype} datapath faults"))
    print(f"\nfaults masked before the output: {result.masked_fraction:.1%}")

    dtype = get_dtype(args.dtype)
    dp = DatapathModel(n_pes=EYERISS_16NM.n_pes, data_width=dtype.width)
    fit = sum(c.fit for c in datapath_fit(dp, {"datapath": result.sdc_rate().p}))
    print(f"projected Eyeriss-16nm datapath FIT rate: {fit:.4g} "
          f"({dp.total_latch_bits:,} latch bits, Eq. 1)")


if __name__ == "__main__":
    main()
