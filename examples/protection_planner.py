"""Budget-driven protection planning.

Where ``protection_pipeline.py`` walks the paper's fixed SED→SLH→ECC
story, this example lets the solver decide: measure a configuration's
SDC characteristics, then ask :func:`repro.core.plan_protection` for
the cheapest protection stack that meets a FIT allowance — and show how
the recommendation changes as the budget tightens.

Run:  python examples/protection_planner.py [--network ConvNet]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.accel import EYERISS_16NM
from repro.core import CampaignSpec, PlannerInputs, plan_protection, run_campaign
from repro.experiments.table8_buffer_fit import COMPONENT_SCOPES
from repro.utils.tables import format_table
from repro.zoo import get_network

DTYPE = "16b_rb10"


def measure(network: str, trials: int, jobs: int) -> PlannerInputs:
    """Run the measurement campaigns the planner needs."""
    print(f"measuring {network} ({DTYPE}): datapath + 4 buffer components, "
          f"{trials} injections each...")
    dp = run_campaign(
        CampaignSpec(network=network, dtype=DTYPE, n_trials=trials, seed=31,
                     with_detection=True),
        jobs=jobs,
    )
    buffer_sdc = {}
    for component, scope in COMPONENT_SCOPES.items():
        res = run_campaign(
            CampaignSpec(network=network, dtype=DTYPE, target=scope,
                         n_trials=trials, seed=32),
            jobs=jobs,
        )
        buffer_sdc[component] = res.sdc_rate().p
    quality = dp.detection_quality()
    by_bit = dp.rate_by_bit()
    per_bit = np.array([by_bit[b].p if b in by_bit else 0.0 for b in range(16)])
    net = get_network(network)
    acts = sum(int(np.prod(net.shapes[i + 1])) for i in net.block_output_indices())
    return PlannerInputs(
        config=EYERISS_16NM,
        datapath_sdc=dp.sdc_rate().p,
        buffer_sdc=buffer_sdc,
        sed_recall=quality.recall if quality.total_sdc else 0.5,
        per_bit_fit=per_bit,
        act_elements_per_inference=acts,
        macs_per_inference=net.total_macs(),
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--network", default="ConvNet")
    parser.add_argument("--trials", type=int, default=250)
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args()

    inputs = measure(args.network, args.trials, args.jobs)

    rows = []
    for budget in (10.0, 1.0, 0.1, 0.01):
        best = plan_protection(inputs, fit_budget=budget)[0]
        rows.append([
            f"{budget:g} FIT",
            best.describe(),
            "meets budget" if best.total_fit <= budget else "best effort",
        ])
    print()
    print(format_table(
        ["allowance", "cheapest stack", "status"],
        rows,
        title=f"protection plans for {args.network} as the FIT budget tightens",
    ))
    print("\nthe solver reproduces the paper's section-6 progression: a loose"
          "\nbudget needs nothing, a realistic automotive allowance forces ECC"
          "\non the big buffers, and the strictest budgets add SED and SLH.")


if __name__ == "__main__":
    main()
